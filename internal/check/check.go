// Package check implements the screening phase of CNetVerifier (§3.2):
// an explicit-state model checker over internal/model worlds.
//
// The checker interleaves all enabled steps of the protocol processes
// (message deliveries, lossy drops, out-of-order deliveries) with
// environment events offered by a Scenario (user demands and operator
// responses, §3.2.1), checks the cellular-oriented properties after
// every step (§3.2.2), and reports each violation with the transition
// path that reached it — the counterexample handed to the validation
// phase (§3.2.3).
//
// Three exploration strategies are provided:
//
//   - DFS: bounded-depth depth-first search with visited-state
//     deduplication (the default; mirrors Spin's search).
//   - BFS: breadth-first search, producing shortest counterexamples.
//   - RandomWalk: seeded random schedule sampling, the paper's approach
//     for scenario spaces too large to enumerate.
package check

import (
	"fmt"
	"math/rand"

	"cnetverifier/internal/model"
)

// Property is a cellular-oriented correctness property (§3.2.2)
// evaluated as a monitor over world states.
type Property interface {
	// Name identifies the property (e.g. "PacketService_OK").
	Name() string
	// Check inspects the world after last was applied. It returns a
	// non-empty description when the state violates the property.
	Check(w *model.World, last model.Step) string
}

// Scenario offers candidate environment events for a world (§3.2.1
// usage-scenario modeling). Implementations must be deterministic
// functions of the world state so DFS/BFS remain sound; RandomWalk may
// be paired with stochastic scenarios.
type Scenario interface {
	Events(w *model.World) []model.EnvEvent
}

// ScenarioFunc adapts a function to the Scenario interface.
type ScenarioFunc func(w *model.World) []model.EnvEvent

// Events implements Scenario.
func (f ScenarioFunc) Events(w *model.World) []model.EnvEvent { return f(w) }

// Strategy selects the exploration order.
type Strategy uint8

const (
	// DFS explores depth-first (default).
	DFS Strategy = iota
	// BFS explores breadth-first, yielding shortest counterexamples.
	BFS
	// RandomWalk samples random maximal schedules.
	RandomWalk
)

func (s Strategy) String() string {
	switch s {
	case DFS:
		return "dfs"
	case BFS:
		return "bfs"
	case RandomWalk:
		return "random-walk"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Options bounds and configures a checking run.
type Options struct {
	// Strategy selects DFS (default), BFS or RandomWalk.
	Strategy Strategy
	// MaxDepth bounds the length of explored paths (default 64).
	MaxDepth int
	// MaxStates bounds the number of distinct states visited
	// (default 1 << 20).
	MaxStates int
	// StopAtFirst stops the entire run at the first violation.
	StopAtFirst bool
	// SkipLint disables the pre-screening structural lint
	// (internal/lint). By default Run refuses to explore a world whose
	// lint report carries error-severity findings — exploring a
	// structurally broken world silently shrinks the state space and
	// can mask real property violations.
	SkipLint bool
	// LintSuppress disables individual lint rules per process name
	// during the pre-screening gate (key "*" disables a rule
	// everywhere); values are rule IDs like "MSG003". Scoped worlds
	// that deliberately project away a layer use this instead of
	// SkipLint so every other rule still gates.
	LintSuppress map[string][]string
	// Paranoid fails on any fingerprint collision in the visited table
	// instead of resolving it (exact mode) — used by tests to validate
	// the hashing scheme. Incompatible with Compact.
	Paranoid bool
	// Compact switches the visited table to hash-compaction mode
	// (Spin's supertrace idea): states are recorded by 48-bit
	// fingerprint only, without the full-encoding arena that exact mode
	// uses to resolve fingerprint collisions, cutting the visited-set
	// footprint to ~8 bytes of table per state. Two distinct states
	// whose fingerprints collide are then silently merged — the
	// unexplored subtree is an omission — so results are sound upper
	// bounds with the omission-probability bound reported in
	// Result.Omission. Use it for depth/state bounds that exhaust
	// memory in exact mode; composes with POR, Symmetry and Workers.
	Compact bool
	// Walks and Seed configure RandomWalk: number of schedules sampled
	// and the RNG seed (defaults 1000 and 1). Each walk derives its own
	// RNG stream from (Seed, walk index), so the sampled schedule set —
	// and therefore the violation set — is identical however the walks
	// are scheduled across workers.
	Walks int
	Seed  int64
	// Workers sets the number of exploration goroutines. 0 or 1 runs
	// the sequential engine; >1 runs the work-stealing frontier search
	// (DFS/BFS) or splits the walks (RandomWalk). Parallel runs report
	// the same state count, violation set and transition coverage as
	// sequential runs of the same world (see the determinism contract
	// in DESIGN.md); counterexample paths are re-verified with Replay
	// before being reported.
	Workers int
	// POR enables independence-powered partial-order reduction for the
	// DFS/BFS strategies (RandomWalk ignores it: sampled schedules are
	// not an interleaving fixpoint). The static effect analysis
	// (internal/lint/effects) partitions the world's processes into
	// clusters that share no globals and exchange no messages; the
	// checker then explores each cluster's projection (model.World.
	// Project) instead of their product, cutting visited states from
	// the product of the cluster sizes to their sum. When the analysis
	// finds a single cluster the run is identical to POR off.
	//
	// Soundness assumptions, both documented in DESIGN.md: the scenario
	// offers a state-independent event set (true of every registry
	// scenario), and each property reads only globals written within
	// one cluster (true of every props.* property). The violation set —
	// the (property, description) pairs — is then exactly the full
	// product's; counterexample paths are cluster-local and replay
	// against the cluster's projection.
	POR bool
	// Symmetry enables replica-symmetry reduction for the DFS/BFS
	// strategies (RandomWalk ignores it, like POR: sampled schedules are
	// not a dedup fixpoint to quotient). The visited set keys states by
	// model.World.AppendCanonicalHash instead of AppendHash: per the
	// world's Symmetry descriptor, the per-replica sub-encodings are
	// sorted lexicographically before the inline FNV hash, so all n!
	// permutations of an n-replica state share one visited entry and the
	// exploration walks the quotient. A world without a descriptor is
	// unaffected (the canonical encoding degenerates to the plain one).
	//
	// Replica-labeled properties (e.g. props.DataServiceOKIn("ue2")) can
	// fire on permuted twins the quotient prunes, so Run closes the
	// violation set under the declared permutations afterwards
	// (symmetrizeViolations): the reported (property, description) set
	// equals the plain run's exactly — see DESIGN.md for the soundness
	// argument and its assumptions (equivariant scenario and monitors).
	//
	// Composes with POR: cluster projections carry the filtered
	// descriptor and canonicalize within each cluster, and the closure
	// runs once at the top level over the full world's descriptor.
	Symmetry bool
	// Timing acknowledges a world with virtual-time timers
	// (model.World.EnableTiming): the engines then enumerate the
	// admissible expiry-vs-delivery orderings as ordinary steps (the
	// model's StepsAppend includes StepTimer transitions, with the
	// zone-abstracted windows in the state encoding, so every engine,
	// POR cluster projection and symmetry quotient explores them
	// unchanged). Running a timed world without Timing set is an error
	// — the silent alternative would be exploring timed worlds whose
	// timer steps the caller never asked for. On an untimed world the
	// flag is a no-op.
	Timing bool
	// Budget optionally shares a pool of distinct-state tokens across
	// several runs (a screening campaign's global bound). When the pool
	// dries up the run truncates, exactly like MaxStates.
	Budget *Budget
	// Cancel optionally aborts the run cooperatively from outside (or
	// from a sibling run in a campaign). A cancelled run returns its
	// partial result with Truncated set.
	Cancel *Cancel
}

// IsZero reports whether the options are entirely unset. Callers use
// the zero value to mean "use suggested defaults"; the LintSuppress map
// makes Options non-comparable, so == is not available for this.
func (o Options) IsZero() bool {
	return o.Strategy == DFS && o.MaxDepth == 0 && o.MaxStates == 0 &&
		!o.StopAtFirst && !o.Paranoid && !o.Compact && !o.SkipLint && o.LintSuppress == nil &&
		o.Walks == 0 && o.Seed == 0 && !o.POR && !o.Symmetry && !o.Timing &&
		o.Workers == 0 && o.Budget == nil && o.Cancel == nil
}

func (o Options) withDefaults() Options {
	if o.MaxDepth == 0 {
		o.MaxDepth = 64
	}
	if o.MaxStates == 0 {
		o.MaxStates = 1 << 20
	}
	if o.Walks == 0 {
		o.Walks = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return o
}

// Violation is one property violation with its counterexample.
type Violation struct {
	// Property names the violated property.
	Property string
	// Desc describes the violating state.
	Desc string
	// Path is the step sequence from the initial state to the
	// violation (the counterexample, §3.2.3).
	Path []model.Step
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated after %d steps: %s", v.Property, len(v.Path), v.Desc)
}

// Result summarizes a checking run.
type Result struct {
	// States counts distinct states visited (by hash).
	States int
	// Transitions counts steps applied.
	Transitions int
	// MaxDepth is the deepest path length reached.
	MaxDepth int
	// Truncated reports whether a bound (depth/state cap) cut the
	// exploration short.
	Truncated bool
	// Violations holds one entry per distinct (property, description)
	// pair, each with a replayable counterexample. Sequential runs list
	// them in discovery order; parallel runs (Workers > 1) in canonical
	// order (property, description, path length, path). The set of
	// entries is deterministic for a given world+options; the
	// counterexample chosen for an entry may differ between parallel
	// runs (whichever worker reached the violating state first), but
	// is always re-verified with Replay before being reported.
	Violations []Violation
	// Covered counts, per "proc/transition-label", how often each
	// protocol transition fired during exploration — the model-side
	// coverage metric (a transition never exercised means the scenario
	// space misses part of the spec).
	Covered map[string]int
	// Misrouted and Dropped count messages lost while applying steps:
	// sends to a process absent from the (scoped) world and sends
	// discarded at a full inbox (model.Stats). Like Transitions they
	// tally work, not state-space structure, so parallel runs may count
	// a transition's losses once per exploration of it.
	Misrouted int
	Dropped   int
	// Omission is the hash-compaction soundness bound (Options.
	// Compact): an upper bound on the probability that at least one
	// pair of distinct states shared a fingerprint and was merged,
	// omitting a subtree from the search. Always 0 in exact mode. POR
	// runs report the sum of their cluster runs' bounds.
	Omission float64
	// Visited describes the visited table after the run — occupancy,
	// probe-length histogram, arena bytes (see VisitedStats). Slot
	// placement depends on claim interleaving, so these diagnostics are
	// outside the determinism contract.
	Visited *VisitedStats
}

// Violated reports whether the named property was violated.
func (r *Result) Violated(property string) bool {
	for _, v := range r.Violations {
		if v.Property == property {
			return true
		}
	}
	return false
}

// ViolationsOf returns all violations of the named property.
func (r *Result) ViolationsOf(property string) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Property == property {
			out = append(out, v)
		}
	}
	return out
}

type node struct {
	w     *model.World
	path  *pathNode
	depth int
}

// violKey identifies a distinct violation. A comparable struct key —
// not a concatenated string — so the per-transition duplicate check in
// checkProps is allocation-free.
type violKey struct {
	prop, desc string
}

// Run explores the world from its current state under the scenario and
// returns the checking result. The input world is not mutated.
func Run(w *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Compact && opt.Paranoid {
		return nil, fmt.Errorf("check: Options.Compact and Options.Paranoid are incompatible: compaction drops the encodings paranoid mode verifies against")
	}
	if w.TimingEnabled() && !opt.Timing {
		return nil, fmt.Errorf("check: world has virtual-time timers; set Options.Timing to enumerate timed schedules")
	}
	if sc == nil {
		sc = ScenarioFunc(func(*model.World) []model.EnvEvent { return nil })
	}
	if !opt.SkipLint {
		if err := prescreen(w, sc, opt.LintSuppress); err != nil {
			return nil, err
		}
	}
	var res *Result
	var err error
	if opt.POR && (opt.Strategy == DFS || opt.Strategy == BFS) {
		res, err = runPOR(w, props, sc, opt)
	} else {
		res, err = dispatch(w, props, sc, opt)
	}
	if err != nil {
		return nil, err
	}
	if opt.Symmetry && (opt.Strategy == DFS || opt.Strategy == BFS) {
		// Close the violation set under the world's replica permutations:
		// the quotient search visits one representative per orbit, so a
		// replica-labeled property may have fired only on the
		// representative's labeling. Runs once here, over the full
		// world's descriptor, whether the states came from the plain
		// engines or from POR cluster projections.
		symmetrizeViolations(res, w.Symmetry())
	}
	return res, nil
}

// parallelRootWidthMin is the spin-up threshold of the parallel
// frontier search: a root frontier below it (a single enabled step)
// leaves the workers nothing to share until the search has fanned out,
// and BENCH_screen shows the parallel engine is a wash or worse on
// such worlds (s1, s2, s4ps). dispatch then degrades to the sequential
// engine — result-identical by the determinism contract, minus the
// spin-up cost.
const parallelRootWidthMin = 2

// degradeParallel reports whether a parallel search request should run
// on the sequential engine instead: the root frontier is too narrow to
// amortize worker spin-up. Only meaningful for DFS/BFS (walk splitting
// parallelizes over walks, not over the frontier).
func degradeParallel(w *model.World, sc Scenario, opt Options) bool {
	if opt.Workers <= 1 || (opt.Strategy != DFS && opt.Strategy != BFS) {
		return false
	}
	return len(w.Steps(sc.Events(w))) < parallelRootWidthMin
}

// dispatch routes an already-defaulted, already-prescreened run to its
// exploration engine.
func dispatch(w *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	var res *Result
	var err error
	switch opt.Strategy {
	case DFS, BFS:
		switch {
		case opt.Workers > 1 && !degradeParallel(w, sc, opt):
			res, err = runParallelSearch(w, props, sc, opt)
		case opt.Strategy == DFS:
			res, err = runDFS(w, props, sc, opt)
		default:
			res, err = runSearch(w, props, sc, opt)
		}
	case RandomWalk:
		if opt.Workers > 1 {
			res, err = runParallelWalk(w, props, sc, opt)
		} else {
			res, err = runRandomWalk(w, props, sc, opt)
		}
	default:
		return nil, fmt.Errorf("check: unknown strategy %v", opt.Strategy)
	}
	return res, err
}

// coverage tallies fired transitions by (process index, transition
// index) so the exploration hot path never builds a "proc/label"
// string key; the counters materialize into a Result.Covered map once
// per run.
type coverage struct {
	w      *model.World
	counts [][]int
}

func newCoverage(w *model.World) *coverage {
	c := &coverage{w: w, counts: make([][]int, len(w.Procs))}
	for i, p := range w.Procs {
		c.counts[i] = make([]int, len(p.M.Spec().Transitions))
	}
	return c
}

// note records an applied step (no-op for drops/discards, which fire
// no transition).
func (c *coverage) note(s model.Step) {
	if s.Label == "" {
		return
	}
	if i, ok := c.w.ProcIndex(s.Proc); ok && s.TransIdx < len(c.counts[i]) {
		c.counts[i][s.TransIdx]++
	}
}

// into materializes the counters into a Covered map.
func (c *coverage) into(m map[string]int) map[string]int {
	for i, p := range c.w.Procs {
		spec := p.M.Spec()
		for ti, n := range c.counts[i] {
			if n > 0 {
				m[p.Name+"/"+spec.Transitions[ti].Name] += n
			}
		}
	}
	return m
}

// runDFS is the sequential depth-first engine, exploring in place with
// the model layer's apply/undo discipline: the world is snapshotted
// once per search node (Save) and rewound after each child (Restore)
// instead of cloned per transition — Spin's state-vector restore. The
// node order replicates the frontier-stack engine exactly (children
// are property-checked in step order, then descended in reverse push
// order, i.e. LIFO), so discovery order — and with it the first
// counterexample found under StopAtFirst and the golden traces — is
// unchanged. Steady-state exploration allocates nothing: per-depth
// frames (undo record, steps buffer, expand list) are reused across
// the whole run and grow only while the search deepens.
func runDFS(w0 *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	res := &Result{Covered: make(map[string]int)}
	visited := newVisitedSet(opt)
	seenViol := make(map[violKey]struct{})
	cov := newCoverage(w0)
	var buf []byte

	w := w0.Clone()
	var err error
	if _, buf, err = markVisited(visited, w, 0, buf); err != nil {
		return nil, err
	}

	type frame struct {
		undo   model.Undo
		steps  []model.Step
		expand []model.Step
	}
	var frames []*frame
	frameAt := func(depth int) *frame {
		for len(frames) <= depth {
			frames = append(frames, &frame{})
		}
		return frames[depth]
	}
	var path []model.Step
	stop := false

	var rec func(depth int) error
	rec = func(depth int) error {
		if opt.Cancel.Cancelled() {
			res.Truncated = true
			stop = true
			return nil
		}
		if depth > res.MaxDepth {
			res.MaxDepth = depth
		}
		if depth >= opt.MaxDepth {
			res.Truncated = true
			return nil
		}
		f := frameAt(depth)
		f.steps = w.StepsAppend(f.steps[:0], sc.Events(w))
		f.expand = f.expand[:0]
		w.Save(&f.undo)
		for _, s := range f.steps {
			applied, err := w.Apply(s)
			if err != nil {
				return fmt.Errorf("check: apply %v: %w", s, err)
			}
			res.Transitions++
			res.Misrouted += applied.Misrouted
			res.Dropped += applied.Dropped
			cov.note(applied)
			path = append(path, applied)
			violated := checkProps(w, applied, path, props, seenViol, res)
			path = path[:len(path)-1]
			if violated && opt.StopAtFirst {
				stop = true
				w.Restore(&f.undo)
				return nil
			}
			var mark markResult
			if mark, buf, err = markVisited(visited, w, depth+1, buf); err != nil {
				return err
			}
			w.Restore(&f.undo)
			if mark.capped {
				res.Truncated = true
				continue
			}
			if mark.expand {
				f.expand = append(f.expand, applied)
			}
		}
		// Descend in reverse order: the frontier-stack engine pushed
		// expandable children in step order and popped the last one
		// first. Each descent re-applies the already-annotated step
		// (not counted again — the check loop above owns the tally).
		for i := len(f.expand) - 1; i >= 0; i-- {
			s := f.expand[i]
			if _, err := w.Apply(s); err != nil {
				return fmt.Errorf("check: apply %v: %w", s, err)
			}
			path = append(path, s)
			err := rec(depth + 1)
			path = path[:len(path)-1]
			w.Restore(&f.undo)
			if err != nil || stop {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	cov.into(res.Covered)
	finishVisited(res, visited)
	return res, nil
}

func runSearch(w0 *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	res := &Result{Covered: make(map[string]int)}
	visited := newVisitedSet(opt)
	seenViol := make(map[violKey]struct{})
	var buf []byte
	var arena stepArena
	var steps []model.Step
	var undo model.Undo

	root := &node{w: w0.Clone()}
	var err error
	if _, buf, err = markVisited(visited, root.w, 0, buf); err != nil {
		return nil, err
	}

	// frontier is used as a LIFO stack for DFS and FIFO queue for BFS.
	frontier := []*node{root}
	for len(frontier) > 0 {
		if opt.Cancel.Cancelled() {
			res.Truncated = true
			break
		}
		var n *node
		if opt.Strategy == BFS {
			n = frontier[0]
			frontier = frontier[1:]
		} else {
			n = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
		if n.depth > res.MaxDepth {
			res.MaxDepth = n.depth
		}
		if n.depth >= opt.MaxDepth {
			res.Truncated = true
			continue
		}
		// Apply/undo on the node's own world; only a transition that
		// discovers (or shallower-rediscovers) a state clones.
		steps = n.w.StepsAppend(steps[:0], sc.Events(n.w))
		n.w.Save(&undo)
		for _, s := range steps {
			applied, err := n.w.Apply(s)
			if err != nil {
				return nil, fmt.Errorf("check: apply %v: %w", s, err)
			}
			res.Transitions++
			res.Misrouted += applied.Misrouted
			res.Dropped += applied.Dropped
			if applied.Label != "" {
				res.Covered[applied.Proc+"/"+applied.Label]++
			}
			path := arena.append(n.path, applied)
			if violated := checkPropsNode(n.w, applied, path, props, seenViol, res); violated && opt.StopAtFirst {
				finishVisited(res, visited)
				return res, nil
			}
			var mark markResult
			if mark, buf, err = markVisited(visited, n.w, n.depth+1, buf); err != nil {
				return nil, err
			}
			switch {
			case mark.capped:
				res.Truncated = true
			case mark.expand:
				frontier = append(frontier, &node{w: n.w.Clone(), path: path, depth: n.depth + 1})
			}
			n.w.Restore(&undo)
		}
	}
	finishVisited(res, visited)
	return res, nil
}

// finishVisited copies the visited set's final accounting into the
// result: state count, compaction omission bound and table
// diagnostics.
func finishVisited(res *Result, visited *visitedSet) {
	res.States = visited.size()
	res.Omission = visited.omission()
	res.Visited = visited.stats()
}

// walkSeed derives an independent RNG seed for one walk from the run
// seed (SplitMix64 finalizer), so walk w samples the same schedule
// whether it runs first, last, or on another goroutine.
func walkSeed(seed int64, walk int) int64 {
	z := uint64(seed) + uint64(walk+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func runRandomWalk(w0 *model.World, props []Property, sc Scenario, opt Options) (*Result, error) {
	res := &Result{Covered: make(map[string]int)}
	seenViol := make(map[violKey]struct{})
	visited := newVisitedSet(opt)
	var buf []byte
	var err error
	if _, buf, err = markVisited(visited, w0, 0, buf); err != nil {
		return nil, err
	}

	var wk walker
	for walk := 0; walk < opt.Walks; walk++ {
		if opt.Cancel.Cancelled() {
			res.Truncated = true
			break
		}
		stop, err := oneWalk(w0, &wk, props, sc, opt, walk, visited, &buf, seenViol, res)
		if err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}
	finishVisited(res, visited)
	return res, nil
}

// walker is per-goroutine scratch for random walks: a reusable world
// refreshed with CloneInto at the start of each walk plus steps/path
// buffers, so sampling thousands of schedules reuses one allocation
// footprint.
type walker struct {
	w     *model.World
	steps []model.Step
	path  []model.Step
}

// oneWalk samples one maximal schedule with the walk's own RNG stream,
// accumulating into res (the caller owns any locking; the sequential
// engine passes its private result). It reports whether the run should
// stop (StopAtFirst hit a violation).
func oneWalk(w0 *model.World, wk *walker, props []Property, sc Scenario, opt Options, walk int, visited *visitedSet, buf *[]byte, seenViol map[violKey]struct{}, res *Result) (bool, error) {
	rng := rand.New(rand.NewSource(walkSeed(opt.Seed, walk)))
	if wk.w == nil {
		wk.w = &model.World{}
	}
	w := wk.w
	w0.CloneInto(w)
	path := wk.path[:0]
	defer func() { wk.path = path[:0] }()
	for depth := 0; depth < opt.MaxDepth; depth++ {
		wk.steps = w.StepsAppend(wk.steps[:0], sc.Events(w))
		steps := wk.steps
		if len(steps) == 0 {
			break
		}
		s := steps[rng.Intn(len(steps))]
		applied, err := w.Apply(s)
		if err != nil {
			return false, fmt.Errorf("check: walk %d apply %v: %w", walk, s, err)
		}
		res.Transitions++
		res.Misrouted += applied.Misrouted
		res.Dropped += applied.Dropped
		if applied.Label != "" {
			res.Covered[applied.Proc+"/"+applied.Label]++
		}
		if depth+1 > res.MaxDepth {
			res.MaxDepth = depth + 1
		}
		// Plain append is safe here (unlike the search engines'
		// appendPath): a walk has no sibling branches sharing the
		// buffer, and checkProps deep-copies any captured path.
		path = append(path, applied)
		var mark markResult
		if mark, *buf, err = markVisited(visited, w, depth+1, *buf); err != nil {
			return false, err
		}
		if mark.capped {
			res.Truncated = true
		}
		if violated := checkProps(w, applied, path, props, seenViol, res); violated && opt.StopAtFirst {
			return true, nil
		}
	}
	return false, nil
}

func checkProps(w *model.World, last model.Step, path []model.Step, props []Property, seen map[violKey]struct{}, res *Result) bool {
	violated := false
	for _, p := range props {
		desc := p.Check(w, last)
		if desc == "" {
			continue
		}
		violated = true
		key := violKey{p.Name(), desc}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		res.Violations = append(res.Violations, Violation{
			Property: p.Name(),
			Desc:     desc,
			Path:     clonePath(path),
		})
	}
	return violated
}

// checkPropsNode is checkProps for the frontier engines, whose paths
// are parent-pointer chains: the counterexample materializes only when
// a violation is actually new.
func checkPropsNode(w *model.World, last model.Step, tail *pathNode, props []Property, seen map[violKey]struct{}, res *Result) bool {
	violated := false
	for _, p := range props {
		desc := p.Check(w, last)
		if desc == "" {
			continue
		}
		violated = true
		key := violKey{p.Name(), desc}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		res.Violations = append(res.Violations, Violation{
			Property: p.Name(),
			Desc:     desc,
			Path:     materializePath(tail),
		})
	}
	return violated
}

// Replay applies a counterexample path to a fresh world, returning the
// resulting world. It is the bridge to the validation phase: the same
// step sequence can then be reproduced on the emulator.
func Replay(w *model.World, path []model.Step) (*model.World, error) {
	r := w.Clone()
	for i, s := range path {
		if _, err := r.Apply(s); err != nil {
			return nil, fmt.Errorf("check: replay step %d (%v): %w", i, s, err)
		}
	}
	return r, nil
}

// FormatCounterexample renders a violation's path as a numbered,
// human-readable trace.
func FormatCounterexample(v Violation) string {
	s := fmt.Sprintf("counterexample for %s (%s):\n", v.Property, v.Desc)
	for i, st := range v.Path {
		s += fmt.Sprintf("  %2d. %s\n", i+1, st)
		for _, note := range st.Notes {
			s += fmt.Sprintf("      | %s\n", note)
		}
	}
	return s
}

// SpecCoverage reports, per process, the fraction of its spec's
// transitions that fired at least once during the run, with the list of
// transitions never exercised. It is the verification-coverage view of
// a screening run: unexercised defect transitions mean the scenario
// space cannot reach them.
func SpecCoverage(w *model.World, res *Result) map[string]CoverageReport {
	out := make(map[string]CoverageReport, len(w.Procs))
	for _, p := range w.Procs {
		spec := p.M.Spec()
		rep := CoverageReport{Total: len(spec.Transitions)}
		for _, t := range spec.Transitions {
			if res.Covered[p.Name+"/"+t.Name] > 0 {
				rep.Fired++
			} else {
				rep.Missed = append(rep.Missed, t.Name)
			}
		}
		out[p.Name] = rep
	}
	return out
}

// CoverageReport summarizes one process's transition coverage.
type CoverageReport struct {
	// Fired and Total count spec transitions exercised vs declared.
	Fired, Total int
	// Missed lists the transition labels never exercised.
	Missed []string
}

// Fraction returns Fired/Total (1 for an empty spec).
func (c CoverageReport) Fraction() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Fired) / float64(c.Total)
}
