package check

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

// vtOp is one reference-model operation: mark key #Key at depth Depth.
// testing/quick generates random sequences of these; keys are drawn
// from a small alphabet so sequences revisit states (the interesting
// paths: rediscovery, min-depth improvement, fingerprint collision).
type vtOp struct {
	Key   uint8
	Depth uint8
}

// vtKey derives a (hash, encoding) pair for a reference key. Keys pair
// up on fingerprints — 2k and 2k+1 share fp k+1 with distinct low hash
// bits and distinct encodings — so every exact-mode sequence exercises
// the collision backstop and every compact-mode sequence exercises
// fingerprint merging.
func vtKey(k uint8) (h uint64, enc []byte) {
	fp := uint64(k/2 + 1)
	return fp<<vtDepthBits | uint64(k), []byte(fmt.Sprintf("state-encoding-%03d", k))
}

// vtRefMark is the reference model: a plain min-depth map keyed by the
// full encoding (exact mode) or the fingerprint (compact mode).
func vtRefMark(ref map[string]int, key string, depth int) markResult {
	prior, ok := ref[key]
	if !ok {
		ref[key] = depth
		return markResult{isNew: true, expand: true}
	}
	if depth < prior {
		ref[key] = depth
		return markResult{expand: true}
	}
	return markResult{}
}

// TestVTableMatchesReferenceMap checks the fingerprint table against
// the reference map over random operation sequences, in both exact and
// compact mode, via testing/quick.
func TestVTableMatchesReferenceMap(t *testing.T) {
	for _, compact := range []bool{false, true} {
		name := "exact"
		if compact {
			name = "compact"
		}
		t.Run(name, func(t *testing.T) {
			prop := func(ops []vtOp) bool {
				v := newVisitedTable(compact, false, 0, nil, 4)
				ref := make(map[string]int)
				for _, op := range ops {
					h, enc := vtKey(op.Key)
					refKey := string(enc)
					if compact {
						refKey = fmt.Sprintf("fp:%d", vtFP(h))
					}
					depth := int(op.Depth)
					got, err := v.mark(h, enc, depth)
					if err != nil {
						t.Logf("mark error: %v", err)
						return false
					}
					want := vtRefMark(ref, refKey, depth)
					if got != want {
						t.Logf("key %d depth %d: got %+v want %+v", op.Key, depth, got, want)
						return false
					}
				}
				if v.size() != len(ref) {
					t.Logf("size %d, reference %d", v.size(), len(ref))
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestVTableGrowthKeepsEntries inserts far more states than the initial
// table holds (sequentially), forcing repeated cooperative growth, and
// then verifies every entry survived migration with its minimal depth:
// re-marking at the recorded min is a no-op, one shallower expands.
func TestVTableGrowthKeepsEntries(t *testing.T) {
	v := newVisitedTable(false, false, 0, nil, 4)
	const n = 5000
	rng := rand.New(rand.NewSource(7))
	min := make(map[int]int, n)
	for round := 0; round < 3; round++ {
		for k := 0; k < n; k++ {
			depth := rng.Intn(500) + 2
			h := uint64(k+1)<<vtDepthBits | uint64(k)
			enc := []byte(fmt.Sprintf("grow-%05d", k))
			if _, err := v.mark(h, enc, depth); err != nil {
				t.Fatal(err)
			}
			if d, ok := min[k]; !ok || depth < d {
				min[k] = depth
			}
		}
	}
	if v.size() != n {
		t.Fatalf("size %d after growth, want %d", v.size(), n)
	}
	for k, d := range min {
		h := uint64(k+1)<<vtDepthBits | uint64(k)
		enc := []byte(fmt.Sprintf("grow-%05d", k))
		m, err := v.mark(h, enc, d)
		if err != nil {
			t.Fatal(err)
		}
		if m.isNew || m.expand {
			t.Fatalf("key %d lost its min depth %d across growth: %+v", k, d, m)
		}
		if m, _ = v.mark(h, enc, d-1); !m.expand || m.isNew {
			t.Fatalf("key %d at depth %d-1: want depth improvement, got %+v", k, d, m)
		}
	}
	s := v.stats()
	if s.Live != n {
		t.Fatalf("stats.Live = %d, want %d", s.Live, n)
	}
	if s.Grows == 0 {
		t.Fatal("expected table growth from 4 slots")
	}
	if s.ArenaBytes == 0 {
		t.Fatal("exact mode retained no arena bytes")
	}
}

// TestVTableRaceHammer is the concurrent torture test: workers hammer
// overlapping key ranges with clashing depths into a table starting at
// minimum size, so claims, min-depth CAS merges and chunked migrations
// all race. Afterwards the table must hold exactly the distinct keys,
// each at the global minimum depth. Run under -race this also checks
// the claim/publish and seal/copy protocols for data races.
func TestVTableRaceHammer(t *testing.T) {
	const (
		workers = 8
		keys    = 4000
	)
	v := newVisitedTable(false, false, 0, nil, 4)
	depth := func(k, g int) int { return (k*7+g*13)%97 + 2 }
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for _, k := range rng.Perm(keys) {
				h := uint64(k+1)<<vtDepthBits | uint64(k)
				enc := []byte(fmt.Sprintf("hammer-%05d", k))
				if _, err := v.mark(h, enc, depth(k, g)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if v.size() != keys {
		t.Fatalf("size %d after concurrent inserts, want %d", v.size(), keys)
	}
	if s := v.stats(); s.Live != keys {
		t.Fatalf("stats.Live = %d, want %d", s.Live, keys)
	}
	for k := 0; k < keys; k++ {
		best := depth(k, 0)
		for g := 1; g < workers; g++ {
			if d := depth(k, g); d < best {
				best = d
			}
		}
		h := uint64(k+1)<<vtDepthBits | uint64(k)
		enc := []byte(fmt.Sprintf("hammer-%05d", k))
		m, err := v.mark(h, enc, best)
		if err != nil {
			t.Fatal(err)
		}
		if m.isNew || m.expand {
			t.Fatalf("key %d: min depth %d not retained: %+v", k, best, m)
		}
	}
}

// TestVTableExactCollisionBackstop pins the exactness backstop: two
// distinct encodings sharing a fingerprint are kept as two states, and
// paranoid mode reports the collision as an error instead.
func TestVTableExactCollisionBackstop(t *testing.T) {
	h := uint64(42) << vtDepthBits
	a, b := []byte("state-A"), []byte("state-B")

	v := newVisitedTable(false, false, 0, nil, 16)
	if m, err := v.mark(h, a, 3); err != nil || !m.isNew {
		t.Fatalf("first state: %+v, %v", m, err)
	}
	if m, err := v.mark(h, b, 3); err != nil || !m.isNew {
		t.Fatalf("colliding state not separated: %+v, %v", m, err)
	}
	if m, err := v.mark(h, a, 5); err != nil || m.isNew || m.expand {
		t.Fatalf("revisit of first state after collision: %+v, %v", m, err)
	}
	if v.size() != 2 {
		t.Fatalf("size %d, want 2 distinct states", v.size())
	}

	p := newVisitedTable(false, true, 0, nil, 16)
	if _, err := p.mark(h, a, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := p.mark(h, b, 3); err == nil {
		t.Fatal("paranoid mode accepted a fingerprint collision")
	} else if !strings.Contains(err.Error(), "collision") {
		t.Fatalf("unexpected collision error: %v", err)
	}
}

// TestVTableCompactSemantics pins hash compaction: a fingerprint match
// IS the state (distinct encodings merge), there is no arena, and the
// omission bound is the documented pairwise union bound.
func TestVTableCompactSemantics(t *testing.T) {
	v := newVisitedTable(true, false, 0, nil, 16)
	h := uint64(42) << vtDepthBits
	if m, err := v.mark(h, []byte("state-A"), 3); err != nil || !m.isNew {
		t.Fatalf("first state: %+v, %v", m, err)
	}
	if m, err := v.mark(h, []byte("state-B"), 3); err != nil || m.isNew || m.expand {
		t.Fatalf("compact mode split a fingerprint match: %+v, %v", m, err)
	}
	if m, err := v.mark(h, []byte("state-B"), 1); err != nil || m.isNew || !m.expand {
		t.Fatalf("compact min-depth improvement: %+v, %v", m, err)
	}
	for k := 1; k < 10; k++ {
		if _, err := v.mark(uint64(100+k)<<vtDepthBits, nil, 1); err != nil {
			t.Fatal(err)
		}
	}
	if v.size() != 10 {
		t.Fatalf("size %d, want 10 fingerprints", v.size())
	}
	want := 10.0 * 9 / 2 / float64(uint64(1)<<vtFPBits)
	if got := v.omission(); got != want {
		t.Fatalf("omission = %g, want %g", got, want)
	}
	s := v.stats()
	if !s.Compact || s.ArenaBytes != 0 {
		t.Fatalf("compact stats: %+v", s)
	}

	exact := newVisitedTable(false, false, 0, nil, 16)
	if got := exact.omission(); got != 0 {
		t.Fatalf("exact omission = %g, want 0", got)
	}
}

// TestVTableCaps pins MaxStates and Budget enforcement: refusals are
// capped, do not consume tokens, and leave the table at the limit.
func TestVTableCaps(t *testing.T) {
	v := newVisitedTable(false, false, 3, nil, 16)
	for k := 0; k < 3; k++ {
		if m, _ := v.mark(uint64(k+1)<<vtDepthBits, []byte{byte(k)}, 1); !m.isNew {
			t.Fatalf("state %d refused below the cap: %+v", k, m)
		}
	}
	if m, _ := v.mark(uint64(99)<<vtDepthBits, []byte{99}, 1); !m.capped {
		t.Fatalf("state over MaxStates not capped: %+v", m)
	}
	// Rediscovery of a recorded state still works at the cap.
	if m, _ := v.mark(uint64(1)<<vtDepthBits, []byte{0}, 0); !m.expand || m.isNew {
		t.Fatalf("min-depth merge at the cap: %+v", m)
	}
	if v.size() != 3 {
		t.Fatalf("size %d, want 3", v.size())
	}

	b := NewBudget(2)
	vb := newVisitedTable(false, false, 0, b, 16)
	for k := 0; k < 2; k++ {
		if m, _ := vb.mark(uint64(k+1)<<vtDepthBits, []byte{byte(k)}, 1); !m.isNew {
			t.Fatalf("state %d refused with budget left: %+v", k, m)
		}
	}
	if m, _ := vb.mark(uint64(99)<<vtDepthBits, []byte{99}, 1); !m.capped {
		t.Fatalf("state over Budget not capped: %+v", m)
	}
	if b.Remaining() != 0 {
		t.Fatalf("budget remaining %d, want 0", b.Remaining())
	}
}

// TestRunRejectsCompactParanoid pins the Options contract: compaction
// discards the encodings paranoid mode verifies against.
func TestRunRejectsCompactParanoid(t *testing.T) {
	w := counterWorld(t)
	_, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(),
		Options{MaxDepth: 5, Compact: true, Paranoid: true})
	if err == nil {
		t.Fatal("Run accepted Compact+Paranoid")
	}
}

// TestCompactRunMatchesExact runs the same world in exact and compact
// mode: at these state counts a real fingerprint collision is
// (provably, via the omission bound) absent, so states, transitions and
// violations must agree, and only compact mode reports a nonzero bound.
func TestCompactRunMatchesExact(t *testing.T) {
	w := counterWorld(t)
	props := []Property{limitProp{limit: 3}}
	opt := Options{MaxDepth: 8}
	exact, err := Run(w, props, moveScenario(), opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Compact = true
	compact, err := Run(counterWorld(t), props, moveScenario(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if exact.States != compact.States || exact.Transitions != compact.Transitions {
		t.Fatalf("exact %d states/%d transitions, compact %d/%d",
			exact.States, exact.Transitions, compact.States, compact.Transitions)
	}
	if len(exact.Violations) != len(compact.Violations) {
		t.Fatalf("violations: exact %d, compact %d", len(exact.Violations), len(compact.Violations))
	}
	if exact.Omission != 0 {
		t.Fatalf("exact mode reported omission %g", exact.Omission)
	}
	if compact.Omission <= 0 || compact.Omission >= 1e-6 {
		t.Fatalf("compact omission bound %g out of expected range", compact.Omission)
	}
	if exact.Visited == nil || exact.Visited.ArenaBytes == 0 {
		t.Fatal("exact run carries no arena stats")
	}
	if compact.Visited == nil || !compact.Visited.Compact {
		t.Fatal("compact run not flagged in stats")
	}
}
