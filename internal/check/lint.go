package check

import (
	"fmt"
	"strings"

	"cnetverifier/internal/lint"
	"cnetverifier/internal/model"
)

// prescreen runs the structural lint over the world before exploration
// and fails on error-severity findings. The scenario's events on the
// initial world feed the dead-letter pass as environment hints (those
// kinds have a sender: the environment itself).
func prescreen(w *model.World, sc Scenario, suppress map[string][]string) error {
	var hints []lint.EnvHint
	for _, e := range sc.Events(w) {
		hints = append(hints, lint.EnvHint{Proc: e.Proc, Kind: uint16(e.Msg.Kind)})
	}
	rep := lint.World(w, lint.Options{Env: hints, Suppress: suppress})
	errs := rep.At(lint.Error)
	if len(errs) == 0 {
		return nil
	}
	var b strings.Builder
	for _, f := range errs {
		b.WriteString("\n  ")
		b.WriteString(f.String())
	}
	return fmt.Errorf("check: world fails pre-screening lint with %d error finding(s) (set Options.SkipLint to explore anyway):%s",
		len(errs), b.String())
}
