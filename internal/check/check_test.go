package check

import (
	"strings"
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// counterSpec counts MsgUserMove events; reaching limit is "bad".
func counterSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "counter",
		Init: "RUN",
		Vars: map[string]int{"n": 0},
		Transitions: []fsm.Transition{
			{Name: "inc", From: "RUN", On: types.MsgUserMove, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) { c.Set("n", c.Get("n")+1) }},
			{Name: "reset", From: "RUN", On: types.MsgPowerOff, To: fsm.Same,
				Action: func(c fsm.Ctx, e fsm.Event) { c.Set("n", 0) }},
		},
	}
}

type limitProp struct{ limit int }

func (p limitProp) Name() string { return "CounterBelowLimit" }
func (p limitProp) Check(w *model.World, last model.Step) string {
	if w.Proc("C").M.Var("n") >= p.limit {
		return "counter reached limit"
	}
	return ""
}

func counterWorld(t *testing.T) *model.World {
	t.Helper()
	w, err := model.New(model.Config{Procs: []model.ProcConfig{
		{Name: "C", Spec: counterSpec()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func moveScenario() Scenario {
	return ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			{Proc: "C", Msg: types.Message{Kind: types.MsgUserMove}},
			{Proc: "C", Msg: types.Message{Kind: types.MsgPowerOff}},
		}
	})
}

func TestDFSFindsViolation(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(), Options{MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("CounterBelowLimit") {
		t.Fatal("DFS missed reachable violation")
	}
	v := res.ViolationsOf("CounterBelowLimit")[0]
	if len(v.Path) < 3 {
		t.Fatalf("counterexample too short: %d steps", len(v.Path))
	}
	// Replay the counterexample and confirm it reproduces the state.
	end, err := Replay(w, v.Path)
	if err != nil {
		t.Fatal(err)
	}
	if end.Proc("C").M.Var("n") < 3 {
		t.Fatalf("replay ended with n=%d, want >=3", end.Proc("C").M.Var("n"))
	}
	// The input world must not be mutated by Run or Replay.
	if w.Proc("C").M.Var("n") != 0 {
		t.Fatal("Run/Replay mutated the input world")
	}
}

func TestBFSShortestCounterexample(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(),
		Options{Strategy: BFS, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("CounterBelowLimit") {
		t.Fatal("BFS missed reachable violation")
	}
	v := res.ViolationsOf("CounterBelowLimit")[0]
	if len(v.Path) != 3 {
		t.Fatalf("BFS counterexample = %d steps, want exactly 3", len(v.Path))
	}
}

func TestRandomWalkFindsViolation(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(),
		Options{Strategy: RandomWalk, MaxDepth: 12, Walks: 200, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("CounterBelowLimit") {
		t.Fatal("random walk missed easily reachable violation")
	}
}

func TestRandomWalkDeterministicSeed(t *testing.T) {
	w := counterWorld(t)
	opts := Options{Strategy: RandomWalk, MaxDepth: 8, Walks: 50, Seed: 7}
	a, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transitions != b.Transitions || a.States != b.States || len(a.Violations) != len(b.Violations) {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestUnreachableViolation(t *testing.T) {
	w := counterWorld(t)
	// With depth 2 the counter can reach at most 2 < 3.
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(), Options{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violated("CounterBelowLimit") {
		t.Fatal("violation found below reachability depth")
	}
	if !res.Truncated {
		t.Fatal("depth-bounded run should report truncation")
	}
}

func TestStopAtFirst(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 1}}, moveScenario(),
		Options{MaxDepth: 10, StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(res.Violations))
	}
}

func TestStateDeduplication(t *testing.T) {
	// inc/reset generates cycles; dedup must keep the state count at
	// the number of distinct counter values (bounded by depth), not the
	// number of paths (exponential).
	w := counterWorld(t)
	res, err := Run(w, nil, moveScenario(), Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct states: n = 0..8 → 9 states.
	if res.States > 16 {
		t.Fatalf("states = %d; deduplication not effective", res.States)
	}
	if res.Transitions < res.States {
		t.Fatalf("transitions (%d) < states (%d)?", res.Transitions, res.States)
	}
}

func TestParanoidMode(t *testing.T) {
	w := counterWorld(t)
	if _, err := Run(w, nil, moveScenario(), Options{MaxDepth: 8, Paranoid: true}); err != nil {
		t.Fatalf("paranoid run failed: %v", err)
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, nil, moveScenario(), Options{MaxDepth: 50, MaxStates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("state cap should truncate")
	}
	if res.States > 5 {
		t.Fatalf("states = %d, cap was 5", res.States)
	}
}

func TestNilScenario(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 1}}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No env events and no queued messages: nothing to explore.
	if res.Transitions != 0 || len(res.Violations) != 0 {
		t.Fatalf("expected empty exploration, got %+v", res)
	}
}

func TestBadStrategy(t *testing.T) {
	w := counterWorld(t)
	if _, err := Run(w, nil, nil, Options{Strategy: Strategy(99)}); err == nil {
		t.Fatal("bad strategy accepted")
	}
}

func TestFormatCounterexample(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 2}}, moveScenario(), Options{Strategy: BFS})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("no violation")
	}
	out := FormatCounterexample(res.Violations[0])
	if !strings.Contains(out, "CounterBelowLimit") || !strings.Contains(out, "1.") {
		t.Fatalf("unexpected format:\n%s", out)
	}
}

func TestViolationDeduplication(t *testing.T) {
	// The same (property, desc) violation reachable via many paths must
	// be reported once.
	w := counterWorld(t)
	res, err := Run(w, []Property{limitProp{limit: 2}}, moveScenario(), Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.ViolationsOf("CounterBelowLimit")); got != 1 {
		t.Fatalf("violations = %d, want 1 (deduplicated)", got)
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{DFS, BFS, RandomWalk, Strategy(42)} {
		if s.String() == "" {
			t.Fatal("empty strategy string")
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: "P", Desc: "bad", Path: make([]model.Step, 2)}
	if !strings.Contains(v.String(), "P") || !strings.Contains(v.String(), "2") {
		t.Fatalf("bad violation string: %s", v.String())
	}
}

func TestReplayError(t *testing.T) {
	w := counterWorld(t)
	bad := []model.Step{{Kind: model.StepDeliver, Proc: "nope"}}
	if _, err := Replay(w, bad); err == nil {
		t.Fatal("replay of invalid path accepted")
	}
}

// Lossy-channel exploration: with a lossy inbox the checker must
// explore both delivery and drop, and a property seeing the drop
// branch must fire.
func TestLossyBranching(t *testing.T) {
	recvSpec := &fsm.Spec{
		Name: "recv",
		Init: "WAIT",
		Transitions: []fsm.Transition{
			{Name: "got", From: "WAIT", On: types.MsgAttachComplete, To: "DONE"},
		},
	}
	w, err := model.New(model.Config{Procs: []model.ProcConfig{
		{Name: "R", Spec: recvSpec, Lossy: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	w.Inject("R", types.Message{Kind: types.MsgAttachComplete})

	// Property: after the queue drains, R must be DONE. Violated on the
	// drop branch.
	prop := propFunc{
		name: "DeliveryHappened",
		f: func(w *model.World, last model.Step) string {
			if w.Quiescent() && w.Proc("R").M.State() != "DONE" {
				return "message lost, receiver stuck in WAIT"
			}
			return ""
		},
	}
	res, err := Run(w, []Property{prop}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated("DeliveryHappened") {
		t.Fatal("checker did not explore the drop branch")
	}
	v := res.ViolationsOf("DeliveryHappened")[0]
	if v.Path[len(v.Path)-1].Kind != model.StepDrop {
		t.Fatalf("counterexample should end in a drop: %v", v.Path)
	}
}

type propFunc struct {
	name string
	f    func(w *model.World, last model.Step) string
}

func (p propFunc) Name() string                                 { return p.name }
func (p propFunc) Check(w *model.World, last model.Step) string { return p.f(w, last) }

// Transition coverage: the counter world's inc and reset transitions
// are both exercised and reported.
func TestTransitionCoverage(t *testing.T) {
	w := counterWorld(t)
	res, err := Run(w, nil, moveScenario(), Options{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered["C/inc"] == 0 || res.Covered["C/reset"] == 0 {
		t.Fatalf("coverage = %v", res.Covered)
	}
	rep := SpecCoverage(w, res)["C"]
	if rep.Fired != 2 || rep.Total != 2 || len(rep.Missed) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Fraction() != 1 {
		t.Fatalf("fraction = %v", rep.Fraction())
	}
	// A world that never fires anything reports zero coverage.
	empty, err := Run(w, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repEmpty := SpecCoverage(w, empty)["C"]
	if repEmpty.Fired != 0 || len(repEmpty.Missed) != 2 {
		t.Fatalf("empty report = %+v", repEmpty)
	}
}

// EssentialEvents strips non-essential environment events: in a world
// where only UserMove advances the counter, PowerOff resets are
// dropped from the trigger set.
func TestEssentialEvents(t *testing.T) {
	w := counterWorld(t)
	opt := Options{MaxDepth: 10}
	res, err := Run(w, []Property{limitProp{limit: 3}}, moveScenario(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a violation whose path includes a reset (non-essential).
	var chosen *Violation
	for i, v := range res.Violations {
		for _, s := range v.Path {
			if s.Msg.Kind == types.MsgPowerOff {
				chosen = &res.Violations[i]
			}
		}
	}
	if chosen == nil {
		chosen = &res.Violations[0]
	}
	essential, err := EssentialEvents(w, []Property{limitProp{limit: 3}}, moveScenario(), opt, *chosen)
	if err != nil {
		t.Fatal(err)
	}
	if len(essential) != 1 || essential[0].Msg.Kind != types.MsgUserMove {
		t.Fatalf("essential = %v, want only UserMove", essential)
	}
}
