package check

import "cnetverifier/internal/model"

// Violation-path bookkeeping for the frontier engines (runSearch and
// the parallel workers).
//
// Historically every enqueued child carried a private copy of its full
// root-to-node step slice (copy-on-append, so sibling branches never
// shared backing arrays) — O(depth) steps copied per enqueued node,
// the dominant allocation source of a parallel run. The engines now
// thread an immutable parent-pointer tree instead: each node holds one
// step and a pointer to its parent, nodes are bump-allocated from a
// per-worker arena, and a full path materializes only when a violation
// is actually captured. Sibling independence is structural — extending
// a node never mutates shared state — so the old aliasing hazards
// cannot arise.
type pathNode struct {
	prev *pathNode
	step model.Step
}

// stepArenaChunk is the arena allocation granularity. Chunks are
// referenced by the nodes inside them, so an exhausted chunk is freed
// by the GC exactly when no live node (frontier or captured violation)
// points into it.
const stepArenaChunk = 512

// stepArena bump-allocates path nodes. Each worker owns one; nodes may
// be read by other workers after publication (the enqueue's lock is
// the fence), but only the owner appends.
type stepArena struct {
	free []pathNode
}

// append allocates a node extending prev by step.
func (a *stepArena) append(prev *pathNode, step model.Step) *pathNode {
	if len(a.free) == 0 {
		a.free = make([]pathNode, stepArenaChunk)
	}
	n := &a.free[0]
	a.free = a.free[1:]
	n.prev = prev
	n.step = step
	return n
}

// pathLen returns the number of steps on the node's path.
func pathLen(n *pathNode) int {
	len := 0
	for ; n != nil; n = n.prev {
		len++
	}
	return len
}

// materializePath flattens the node's path into a freshly owned step
// slice, deep-copying per-step Notes — same ownership contract as
// clonePath: a captured counterexample must not alias anything the
// engines keep recycling.
func materializePath(n *pathNode) []model.Step {
	out := make([]model.Step, pathLen(n))
	for i := len(out) - 1; n != nil; i, n = i-1, n.prev {
		out[i] = n.step
		if out[i].Notes != nil {
			out[i].Notes = append([]string(nil), out[i].Notes...)
		}
	}
	return out
}
