package check

import (
	"testing"

	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

type alwaysProp struct{}

func (alwaysProp) Name() string                          { return "Always" }
func (alwaysProp) Check(*model.World, model.Step) string { return "always violated" }

// TestViolationPathIsolation captures a violation and then mutates the
// frontier path it was built from — in place and through the shared
// backing array — the way both engines recycle path slices while
// exploring sibling branches. The stored counterexample must be a deep
// copy, untouched by any of it.
func TestViolationPathIsolation(t *testing.T) {
	w := counterWorld(t)

	// A frontier path with spare capacity and per-step notes, exactly
	// the shape appendPath hands to checkProps.
	path := make([]model.Step, 2, 8)
	path[0] = model.Step{Kind: model.StepEnv, Proc: "C", Label: "inc",
		Msg:   types.Message{Kind: types.MsgUserMove},
		Notes: []string{"original note 0"}}
	path[1] = model.Step{Kind: model.StepEnv, Proc: "C", Label: "inc",
		Msg:   types.Message{Kind: types.MsgUserMove},
		Notes: []string{"original note 1"}}

	res := &Result{Covered: make(map[string]int)}
	seen := make(map[violKey]struct{})
	if !checkProps(w, path[1], path, []Property{alwaysProp{}}, seen, res) {
		t.Fatal("property did not trigger")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1", len(res.Violations))
	}

	// Simulate the engine moving on: extend into the spare capacity,
	// rewrite the steps in place, and scribble on the notes.
	_ = append(path, model.Step{Proc: "C", Label: "sibling"})
	path[0].Proc = "CORRUPTED"
	path[0].Label = "corrupted"
	path[1].Notes[0] = "corrupted note"
	path[1].Msg.Kind = types.MsgPowerOff

	got := res.Violations[0].Path
	if len(got) != 2 {
		t.Fatalf("captured path has %d steps, want 2", len(got))
	}
	if got[0].Proc != "C" || got[0].Label != "inc" {
		t.Errorf("step 0 corrupted by frontier reuse: %+v", got[0])
	}
	if got[1].Notes[0] != "original note 1" {
		t.Errorf("step 1 notes corrupted by frontier reuse: %q", got[1].Notes[0])
	}
	if got[1].Msg.Kind != types.MsgUserMove {
		t.Errorf("step 1 message corrupted by frontier reuse: %v", got[1].Msg.Kind)
	}
}

// TestStepArenaSiblingsIndependent asserts two siblings extended from
// one parent node are independent chains: each materializes its own
// path, and mutating one materialization never shows through the other
// or through the shared parent node.
func TestStepArenaSiblingsIndependent(t *testing.T) {
	var arena stepArena
	parent := arena.append(nil, model.Step{Proc: "C", Label: "root", Notes: []string{"n"}})
	a := arena.append(parent, model.Step{Proc: "C", Label: "left"})
	b := arena.append(parent, model.Step{Proc: "C", Label: "right"})
	if pathLen(a) != 2 || pathLen(b) != 2 {
		t.Fatalf("path lengths: a=%d b=%d, want 2", pathLen(a), pathLen(b))
	}
	pa, pb := materializePath(a), materializePath(b)
	if pa[1].Label != "left" || pb[1].Label != "right" {
		t.Fatalf("sibling steps collided: a=%q b=%q", pa[1].Label, pb[1].Label)
	}
	pa[0].Label = "rewritten"
	pa[0].Notes[0] = "scribbled"
	if pb[0].Label != "root" || pb[0].Notes[0] != "n" {
		t.Error("materialized siblings shared steps or notes")
	}
	if parent.step.Label != "root" || parent.step.Notes[0] != "n" {
		t.Error("materialized path aliased the arena node")
	}
}

// TestStepArenaChunking asserts chains longer than one arena chunk stay
// intact: nodes allocated across chunk boundaries keep valid prev links.
func TestStepArenaChunking(t *testing.T) {
	var arena stepArena
	var tail *pathNode
	const n = stepArenaChunk*2 + 7
	for i := 0; i < n; i++ {
		tail = arena.append(tail, model.Step{Label: "s"})
	}
	if got := pathLen(tail); got != n {
		t.Fatalf("pathLen = %d, want %d", got, n)
	}
	if got := len(materializePath(tail)); got != n {
		t.Fatalf("materialized %d steps, want %d", got, n)
	}
}
