package check

import (
	"reflect"
	"testing"

	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// incScenario drives the counter world with a single event, so the root
// frontier has width 1 — below the parallel spin-up threshold.
func incScenario() Scenario {
	return ScenarioFunc(func(w *model.World) []model.EnvEvent {
		return []model.EnvEvent{
			{Proc: "C", Msg: types.Message{Kind: types.MsgUserMove}},
		}
	})
}

// TestDegradeParallel pins the spin-up threshold decision: a root
// frontier narrower than parallelRootWidthMin degrades a parallel
// search request to the sequential engine (there is at most one subtree
// to hand out, so workers would only add channel and CAS traffic), a
// frontier at or above it does not, and sampling strategies — which
// parallelize across walks, not the frontier — never degrade.
func TestDegradeParallel(t *testing.T) {
	w := counterWorld(t)
	opt := Options{Workers: 8, MaxDepth: 8}
	if !degradeParallel(w, incScenario(), opt) {
		t.Error("width-1 root frontier not degraded")
	}
	if degradeParallel(w, moveScenario(), opt) {
		t.Error("width-2 root frontier degraded")
	}
	opt.Strategy = RandomWalk
	if degradeParallel(w, incScenario(), opt) {
		t.Error("RandomWalk degraded: walks parallelize regardless of root width")
	}
}

// TestDegradeParallelEquivalence runs a width-1 world with Workers=8
// and sequentially: the degraded run must report the identical result —
// not merely the same violation set, the same Result (the degraded
// request takes the very same code path).
func TestDegradeParallelEquivalence(t *testing.T) {
	props := []Property{limitProp{limit: 3}}
	seq, err := Run(counterWorld(t), props, incScenario(), Options{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(counterWorld(t), props, incScenario(), Options{MaxDepth: 8, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("degraded parallel run differs from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
	if seq.States == 0 || len(seq.Violations) == 0 {
		t.Fatalf("degenerate fixture: %d states, %d violations", seq.States, len(seq.Violations))
	}
}
