package check

import (
	"testing"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/model"
	"cnetverifier/internal/types"
)

// fuzzWorld builds a two-process world with a lossy channel and a few
// globals — enough structure that every component of the canonical
// encoding (machine states, variables, queues, globals) is exercised
// by the byte-driven mutations below.
func fuzzWorld(f interface{ Fatal(...any) }) *model.World {
	spec := &fsm.Spec{
		Name: "fz",
		Init: "A",
		Vars: map[string]int{"x": 0},
		Transitions: []fsm.Transition{
			{Name: "go", From: "A", On: types.MsgUserMove, To: "B"},
			{Name: "back", From: "B", On: types.MsgUserMove, To: "A"},
		},
	}
	w, err := model.New(model.Config{
		Procs: []model.ProcConfig{
			{Name: "P", Spec: spec},
			{Name: "Q", Spec: spec, Lossy: true},
		},
		Globals: map[string]int{"g.a": 0, "g.b": 1},
	})
	if err != nil {
		f.Fatal(err)
	}
	return w
}

// mutate applies one byte-driven mutation to the world and reports
// whether it changed anything. Every branch alters exactly one
// component of the canonical encoding.
func mutate(w *model.World, op, arg byte) bool {
	switch op % 6 {
	case 0:
		w.Proc("P").M.SetVar("x", int(arg))
	case 1:
		w.Proc("Q").M.SetVar("y", int(arg)) // introduces a new var name
	case 2:
		states := []fsm.State{"A", "B"}
		w.Proc("P").M.SetState(states[int(arg)%len(states)])
	case 3:
		w.SetGlobal("g.a", int(arg))
	case 4:
		w.SetGlobal("g.new", int(arg)) // introduces a new global
	case 5:
		ch := w.Chan("Q")
		ch.Queue = append(ch.Queue, types.Message{
			Kind:  types.MsgKind(arg),
			Cause: types.Cause(arg / 3),
			Seq:   uint32(arg) * 7,
			From:  "P",
		})
	}
	return true
}

// FuzzStateHash drives random mutation sequences through the canonical
// encoder and the visited set, asserting the invariants the engines
// rely on:
//
//   - encoding is a function of state: a clone encodes byte-for-byte
//     identically and re-marking a world is never "new";
//   - distinct encodings never silently collide: every snapshot goes
//     through a paranoid visited set, which errors on a hash collision
//     with a different encoding;
//   - min-depth semantics round-trip: re-marking at a shallower depth
//     asks for re-expansion, deeper or equal does not.
func FuzzStateHash(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{5, 200, 5, 201, 5, 202, 1, 9})
	f.Add([]byte{3, 3, 3, 3})
	f.Add([]byte{})
	f.Add([]byte{2, 1, 2, 0, 4, 255, 0, 128})

	f.Fuzz(func(t *testing.T, data []byte) {
		w := fuzzWorld(t)
		v := newVisitedSet(Options{Paranoid: true})
		var buf []byte
		var err error

		mark := func(w *model.World, depth int) markResult {
			var m markResult
			if m, buf, err = markVisited(v, w, depth, buf); err != nil {
				t.Fatalf("hash collision: %v", err)
			}
			return m
		}

		depth := 1
		snap := w.Clone()
		if m := mark(w, 0); !m.isNew {
			t.Fatal("initial state not new")
		}
		for i := 0; i+1 < len(data); i += 2 {
			mutate(w, data[i], data[i+1])

			// The clone of the previous snapshot must still hash to the
			// stored value: re-marking is a pure revisit.
			if m := mark(snap.Clone(), depth+1); m.isNew {
				t.Fatal("re-marking a cloned snapshot claimed a new state")
			} else if m.expand {
				t.Fatal("re-marking at a deeper depth asked for re-expansion")
			}

			// The mutated world goes in paranoid: a silent collision with
			// any earlier snapshot fails the run. (The mutation may also
			// legitimately revisit an earlier state — both outcomes are
			// fine; only a collision error is not.)
			m := mark(w, depth)
			if m.isNew {
				// Shallower rediscovery of a brand-new state must re-expand.
				if re := mark(w.Clone(), depth-1); re.isNew || !re.expand {
					t.Fatalf("shallower re-mark: isNew=%v expand=%v, want revisit+expand", re.isNew, re.expand)
				}
			}

			// Encoding must be a pure function of state: two fresh clones
			// encode identically.
			e1 := w.Clone().Encode(nil)
			e2 := w.Clone().Encode(nil)
			if string(e1) != string(e2) {
				t.Fatalf("clone encodings differ:\n%q\n%q", e1, e2)
			}
			h1, _ := w.AppendHash(nil)
			h2 := w.Hash()
			if h1 != h2 {
				t.Fatalf("AppendHash %#x != Hash %#x", h1, h2)
			}

			snap = w.Clone()
			depth++
		}

		// Mutating a clone never perturbs the original's hash.
		before := w.Hash()
		c := w.Clone()
		mutate(c, 0, 77)
		mutate(c, 5, 91)
		mutate(c, 4, 13)
		if w.Hash() != before {
			t.Fatal("mutating a clone changed the original's hash")
		}

		// Symmetry leg: the same byte stream drives the namespaced
		// two-replica world (fuzz_sym_test.go) and its mirror image
		// through a canonical paranoid visited set. Permutation-
		// equivalent states must share one visited entry — the mirror
		// of every freshly marked state is a pure revisit — and
		// paranoid mode verifies the stored canonical bytes match, so
		// a same-hash-different-encoding slip fails loudly.
		sw := fuzzSymWorld(t)
		mw := fuzzSymWorld(t)
		sv := newVisitedSet(Options{Paranoid: true, Symmetry: true, Strategy: DFS})
		var sbuf []byte
		smark := func(w *model.World, depth int) markResult {
			var m markResult
			if m, sbuf, err = markVisited(sv, w, depth, sbuf); err != nil {
				t.Fatalf("canonical hash collision: %v", err)
			}
			return m
		}
		if m := smark(sw, 0); !m.isNew {
			t.Fatal("initial sym state not new")
		}
		if m := smark(mw, 1); m.isNew {
			t.Fatal("swap image of the initial state claimed a new entry")
		}
		sdepth := 1
		crossed := false
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 13
			if op >= 11 {
				// Cross-replica senders are not canonicalized (see
				// mutateSym): the mirror may legitimately be a new
				// entry from here on. It still goes through the
				// paranoid set — false merges would fail loudly.
				crossed = true
			}
			mutateSym(sw, op, data[i+1])
			mutateSym(mw, symMirror[op], data[i+1])
			smark(sw, sdepth)
			if m := smark(mw, sdepth+1); !crossed {
				if m.isNew {
					t.Fatal("mirror of a visited state claimed a new entry")
				} else if m.expand {
					t.Fatal("mirror re-mark at a deeper depth asked for re-expansion")
				}
			}
			sdepth++
		}
	})
}
