package check

import (
	"sort"
	"sync/atomic"

	"cnetverifier/internal/model"
)

// Budget is a token budget of distinct states shared by several
// checking runs (the campaign-level bound of a screening sweep: N
// scenarios drawing from one pool instead of N private caps). Each
// newly discovered state consumes one token; when the pool is dry every
// participating run truncates. The zero value has no tokens; share one
// *Budget across runs via Options.Budget.
type Budget struct {
	left atomic.Int64
}

// NewBudget returns a budget holding the given number of state tokens.
func NewBudget(states int) *Budget {
	b := &Budget{}
	b.left.Store(int64(states))
	return b
}

// take consumes one token, reporting false when the pool is exhausted.
// A single fetch-and-add with overshoot repair replaces a CAS retry
// loop: contended takers never spin, and a failed take restores the
// token it briefly over-drew. The counter can therefore dip negative
// transiently, but only by the number of concurrently failing takers —
// a take succeeds only when the pre-decrement value was positive, so
// the pool never over-grants.
func (b *Budget) take() bool {
	if b == nil {
		return true
	}
	if b.left.Add(-1) < 0 {
		b.left.Add(1)
		return false
	}
	return true
}

// put returns one token to the pool: the undo of a take whose claim
// lost a CAS race in the visited table (the state was concurrently
// recorded by another worker, so no token is owed for it).
func (b *Budget) put() {
	if b != nil {
		b.left.Add(1)
	}
}

// Remaining returns the tokens left in the pool (0 when exhausted; the
// raw counter may be transiently negative mid-repair).
func (b *Budget) Remaining() int {
	if n := b.left.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// Cancel is a cooperative cancellation flag shared by several checking
// runs. Once set, every participating run stops expanding, marks its
// result truncated and returns what it has — the campaign-level
// "stop everything at the first violation" switch.
type Cancel struct {
	flag atomic.Bool
}

// Cancel sets the flag.
func (c *Cancel) Cancel() { c.flag.Store(true) }

// Cancelled reports whether the flag is set. A nil receiver is never
// cancelled.
func (c *Cancel) Cancelled() bool { return c != nil && c.flag.Load() }

// visitedSet is the deduplication structure shared by the sequential
// and parallel engines: the lock-free open-addressing fingerprint
// table of vtable.go, keyed by the canonical state hash and tracking
// for each state the shallowest depth at which it was discovered.
//
// Min-depth tracking is what makes bounded exploration deterministic:
// a state first reached through a long path is re-expanded if a
// shorter path to it is found later, so the set of states expanded
// within MaxDepth is a fixpoint — every state whose true minimal depth
// is below the bound — independent of exploration order or worker
// interleaving. (Plain first-visit marking makes the truncated frontier
// depend on discovery order, which is exactly the nondeterminism a
// parallel engine cannot afford.)
//
// In exact mode (the default) the table stores every state's full
// encoding in an append-only arena and resolves fingerprint matches
// byte-for-byte, so distinct states are never merged; paranoid mode
// turns a fingerprint collision into an error instead of probing past
// it (the hashing-scheme validation used by FuzzStateHash). Compact
// mode (Options.Compact) keeps fingerprints only — Spin's hash
// compaction — and the engines surface the omission bound in
// Result.Omission.
type visitedSet struct {
	// canon keys states by the symmetry-canonical encoding
	// (model.World.AppendCanonicalHash) instead of the plain one —
	// Options.Symmetry under DFS/BFS. Every engine sharing the set then
	// dedups permutation-equivalent states into one entry.
	canon bool
	table *visitedTable
}

func newVisitedSet(opt Options) *visitedSet {
	return &visitedSet{
		canon: opt.Symmetry && (opt.Strategy == DFS || opt.Strategy == BFS),
		table: newVisitedTable(opt.Compact && !opt.Paranoid, opt.Paranoid,
			int64(opt.MaxStates), opt.Budget, vtMinSlots),
	}
}

// size returns the number of distinct states recorded.
func (v *visitedSet) size() int { return v.table.size() }

// omission returns the hash-compaction omission bound (0 in exact
// mode).
func (v *visitedSet) omission() float64 { return v.table.omission() }

// stats scans the final table; call after the run has quiesced.
func (v *visitedSet) stats() *VisitedStats { return v.table.stats() }

// markResult reports the outcome of recording one state.
type markResult struct {
	// isNew: the state had never been seen.
	isNew bool
	// expand: the caller should (re-)expand the state — it is new, or
	// it was rediscovered strictly shallower than every earlier visit.
	expand bool
	// capped: the state was new but MaxStates or the shared Budget is
	// exhausted; it was not recorded and the run is truncated.
	capped bool
}

// markVisited records the world at the given depth, using buf as
// encoding scratch (pass the previous call's return to avoid
// reallocating). In paranoid mode a fingerprint hit is verified
// byte-for-byte against the stored encoding and a genuine collision is
// an error.
func markVisited(v *visitedSet, w *model.World, depth int, buf []byte) (markResult, []byte, error) {
	var h uint64
	if v.canon {
		h, buf = w.AppendCanonicalHash(buf)
	} else {
		h, buf = w.AppendHash(buf)
	}
	m, err := v.table.mark(h, buf, depth)
	return m, buf, err
}

// clonePath deep-copies a counterexample path, including each step's
// Notes slice. Violations must own their paths outright: the engines
// keep extending and recycling frontier paths (and parallel workers do
// so concurrently), so a captured path that aliases frontier backing
// arrays could be rewritten after the fact.
func clonePath(path []model.Step) []model.Step {
	out := make([]model.Step, len(path))
	copy(out, path)
	for i := range out {
		if out[i].Notes != nil {
			out[i].Notes = append([]string(nil), out[i].Notes...)
		}
	}
	return out
}

// SortViolations orders violations canonically (see sortViolations).
// Exported for sibling engines — the scenario fuzzer (internal/fuzz)
// reports its violation sets in the same canonical order as the
// checker so the two are directly comparable.
func SortViolations(vs []Violation) { sortViolations(vs) }

// DedupeViolations canonically sorts the violations and collapses
// duplicate (property, description) pairs to the smallest
// counterexample, in place; it returns the deduplicated prefix.
func DedupeViolations(vs []Violation) []Violation { return dedupeViolations(vs) }

// ClonePath deep-copies a counterexample path, including per-step
// Notes (see clonePath). Exported for engines that, like the checker,
// keep extending shared path buffers while capturing violations.
func ClonePath(path []model.Step) []model.Step { return clonePath(path) }

// sortViolations orders violations canonically — by property, then
// description, then path length, then the rendered path — so results
// are stable regardless of discovery order. Sequential and parallel
// runs of the same world therefore report the same violation list in
// the same order.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Property != b.Property {
			return a.Property < b.Property
		}
		if a.Desc != b.Desc {
			return a.Desc < b.Desc
		}
		if len(a.Path) != len(b.Path) {
			return len(a.Path) < len(b.Path)
		}
		return renderPath(a.Path) < renderPath(b.Path)
	})
}

func renderPath(path []model.Step) string {
	s := ""
	for _, st := range path {
		s += st.String() + "\n"
	}
	return s
}
