package check

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cnetverifier/internal/model"
)

// Budget is a token budget of distinct states shared by several
// checking runs (the campaign-level bound of a screening sweep: N
// scenarios drawing from one pool instead of N private caps). Each
// newly discovered state consumes one token; when the pool is dry every
// participating run truncates. The zero value has no tokens; share one
// *Budget across runs via Options.Budget.
type Budget struct {
	left atomic.Int64
}

// NewBudget returns a budget holding the given number of state tokens.
func NewBudget(states int) *Budget {
	b := &Budget{}
	b.left.Store(int64(states))
	return b
}

// take consumes one token, reporting false when the pool is exhausted.
// A single fetch-and-add with overshoot repair replaces a CAS retry
// loop: contended takers never spin, and a failed take restores the
// token it briefly over-drew. The counter can therefore dip negative
// transiently, but only by the number of concurrently failing takers —
// a take succeeds only when the pre-decrement value was positive, so
// the pool never over-grants.
func (b *Budget) take() bool {
	if b == nil {
		return true
	}
	if b.left.Add(-1) < 0 {
		b.left.Add(1)
		return false
	}
	return true
}

// Remaining returns the tokens left in the pool (0 when exhausted; the
// raw counter may be transiently negative mid-repair).
func (b *Budget) Remaining() int {
	if n := b.left.Load(); n > 0 {
		return int(n)
	}
	return 0
}

// Cancel is a cooperative cancellation flag shared by several checking
// runs. Once set, every participating run stops expanding, marks its
// result truncated and returns what it has — the campaign-level
// "stop everything at the first violation" switch.
type Cancel struct {
	flag atomic.Bool
}

// Cancel sets the flag.
func (c *Cancel) Cancel() { c.flag.Store(true) }

// Cancelled reports whether the flag is set. A nil receiver is never
// cancelled.
func (c *Cancel) Cancelled() bool { return c != nil && c.flag.Load() }

// visitedShards is the number of stripes of the visited set. A power of
// two well above any sane worker count keeps the probability of two
// workers serializing on one mutex negligible.
const visitedShards = 64

// visitedSet is the deduplication structure shared by the sequential
// and parallel engines: a striped-mutex hash set keyed by the canonical
// state hash, tracking for each state the shallowest depth at which it
// was discovered.
//
// Min-depth tracking is what makes bounded exploration deterministic:
// a state first reached through a long path is re-expanded if a
// shorter path to it is found later, so the set of states expanded
// within MaxDepth is a fixpoint — every state whose true minimal depth
// is below the bound — independent of exploration order or worker
// interleaving. (Plain first-visit marking makes the truncated frontier
// depend on discovery order, which is exactly the nondeterminism a
// parallel engine cannot afford.)
type visitedSet struct {
	paranoid bool
	// canon keys states by the symmetry-canonical encoding
	// (model.World.AppendCanonicalHash) instead of the plain one —
	// Options.Symmetry under DFS/BFS. Every engine sharing the set then
	// dedups permutation-equivalent states into one entry.
	canon  bool
	limit  int64 // MaxStates
	budget *Budget
	states atomic.Int64
	shards [visitedShards]struct {
		mu    sync.Mutex
		depth map[uint64]int
		enc   map[uint64][]byte // full encodings, paranoid mode only
	}
}

func newVisitedSet(opt Options) *visitedSet {
	v := &visitedSet{
		paranoid: opt.Paranoid,
		canon:    opt.Symmetry && (opt.Strategy == DFS || opt.Strategy == BFS),
		limit:    int64(opt.MaxStates),
		budget:   opt.Budget,
	}
	for i := range v.shards {
		v.shards[i].depth = make(map[uint64]int)
		if v.paranoid {
			v.shards[i].enc = make(map[uint64][]byte)
		}
	}
	return v
}

// size returns the number of distinct states recorded.
func (v *visitedSet) size() int { return int(v.states.Load()) }

// markResult reports the outcome of recording one state.
type markResult struct {
	// isNew: the state hash had never been seen.
	isNew bool
	// expand: the caller should (re-)expand the state — it is new, or
	// it was rediscovered strictly shallower than every earlier visit.
	expand bool
	// capped: the state was new but MaxStates or the shared Budget is
	// exhausted; it was not recorded and the run is truncated.
	capped bool
}

// markVisited records the world at the given depth, using buf as
// encoding scratch (pass the previous call's return to avoid
// reallocating). In paranoid mode a hash hit is verified byte-for-byte
// against the stored encoding and a genuine collision is an error.
func markVisited(v *visitedSet, w *model.World, depth int, buf []byte) (markResult, []byte, error) {
	var h uint64
	if v.canon {
		h, buf = w.AppendCanonicalHash(buf)
	} else {
		h, buf = w.AppendHash(buf)
	}
	s := &v.shards[h&(visitedShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if best, seen := s.depth[h]; seen {
		if v.paranoid {
			if prev := s.enc[h]; string(prev) != string(buf) {
				return markResult{}, buf, fmt.Errorf("check: hash collision at %#x: %d-byte vs %d-byte states", h, len(prev), len(buf))
			}
		}
		if depth < best {
			s.depth[h] = depth
			return markResult{expand: true}, buf, nil
		}
		return markResult{}, buf, nil
	}
	// New state: reserve a token against the cap and the shared budget
	// before recording, so the state count never overshoots MaxStates
	// even under concurrent discovery. Like Budget.take, this is an
	// optimistic fetch-and-add with rollback rather than a CAS loop: a
	// reservation that lands past the limit backs itself out, and a
	// successful one is exactly the pre-increment-below-limit case.
	if cur := v.states.Add(1); v.limit > 0 && cur > v.limit {
		v.states.Add(-1)
		return markResult{capped: true}, buf, nil
	}
	if !v.budget.take() {
		v.states.Add(-1)
		return markResult{capped: true}, buf, nil
	}
	s.depth[h] = depth
	if v.paranoid {
		s.enc[h] = append([]byte(nil), buf...)
	}
	return markResult{isNew: true, expand: true}, buf, nil
}

// appendPath copies-on-append so sibling branches never share backing
// arrays.
func appendPath(path []model.Step, s model.Step) []model.Step {
	out := make([]model.Step, len(path)+1)
	copy(out, path)
	out[len(path)] = s
	return out
}

// clonePath deep-copies a counterexample path, including each step's
// Notes slice. Violations must own their paths outright: the engines
// keep extending and recycling frontier paths (and parallel workers do
// so concurrently), so a captured path that aliases frontier backing
// arrays could be rewritten after the fact.
func clonePath(path []model.Step) []model.Step {
	out := make([]model.Step, len(path))
	copy(out, path)
	for i := range out {
		if out[i].Notes != nil {
			out[i].Notes = append([]string(nil), out[i].Notes...)
		}
	}
	return out
}

// SortViolations orders violations canonically (see sortViolations).
// Exported for sibling engines — the scenario fuzzer (internal/fuzz)
// reports its violation sets in the same canonical order as the
// checker so the two are directly comparable.
func SortViolations(vs []Violation) { sortViolations(vs) }

// DedupeViolations canonically sorts the violations and collapses
// duplicate (property, description) pairs to the smallest
// counterexample, in place; it returns the deduplicated prefix.
func DedupeViolations(vs []Violation) []Violation { return dedupeViolations(vs) }

// ClonePath deep-copies a counterexample path, including per-step
// Notes (see clonePath). Exported for engines that, like the checker,
// keep extending shared path buffers while capturing violations.
func ClonePath(path []model.Step) []model.Step { return clonePath(path) }

// sortViolations orders violations canonically — by property, then
// description, then path length, then the rendered path — so results
// are stable regardless of discovery order. Sequential and parallel
// runs of the same world therefore report the same violation list in
// the same order.
func sortViolations(vs []Violation) {
	sort.SliceStable(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Property != b.Property {
			return a.Property < b.Property
		}
		if a.Desc != b.Desc {
			return a.Desc < b.Desc
		}
		if len(a.Path) != len(b.Path) {
			return len(a.Path) < len(b.Path)
		}
		return renderPath(a.Path) < renderPath(b.Path)
	})
}

func renderPath(path []model.Step) string {
	s := ""
	for _, st := range path {
		s += st.String() + "\n"
	}
	return s
}
