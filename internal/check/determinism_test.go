package check_test

// External test package: the determinism suite drives the checker
// through the standard scoped worlds of internal/core, which itself
// imports internal/check.

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
)

// violationKeys extracts the sorted (property, description) set of a
// result — the part of the violation list the determinism contract
// promises, independent of which counterexample path each engine
// happened to capture first.
func violationKeys(res *check.Result) []string {
	keys := make([]string, len(res.Violations))
	for i, v := range res.Violations {
		keys[i] = v.Property + "\x00" + v.Desc
	}
	sort.Strings(keys)
	return keys
}

// TestParallelDeterminism asserts the engine's determinism contract on
// every standard world: a sequential run and parallel runs with 1, 2
// and 8 workers agree on the distinct-state count, the violation set
// and the per-process spec coverage.
func TestParallelDeterminism(t *testing.T) {
	for _, name := range core.WorldNames() {
		s := core.StandardWorlds(false)[name]
		t.Run(name, func(t *testing.T) {
			base, err := core.Screen(s, check.Options{})
			if err != nil {
				t.Fatalf("sequential screen: %v", err)
			}
			wantKeys := violationKeys(base.Result)
			wantCov := check.SpecCoverage(s.World, base.Result)

			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					opt := s.Options
					opt.Workers = workers
					r, err := core.Screen(s, opt)
					if err != nil {
						t.Fatalf("screen with %d workers: %v", workers, err)
					}
					if got := violationKeys(r.Result); !reflect.DeepEqual(got, wantKeys) {
						t.Errorf("violation set mismatch:\n got %q\nwant %q", got, wantKeys)
					}
					if r.Result.States != base.Result.States {
						t.Errorf("states = %d, want %d", r.Result.States, base.Result.States)
					}
					if got := check.SpecCoverage(s.World, r.Result); !reflect.DeepEqual(got, wantCov) {
						t.Errorf("spec coverage mismatch:\n got %+v\nwant %+v", got, wantCov)
					}
				})
			}
		})
	}
}

// TestParallelRunsAgreeWithEachOther re-runs the widest world twice at
// the same worker count and asserts the violation lists are identical
// entry-for-entry (canonical order makes repeated parallel runs
// reproducible, not merely set-equal).
func TestParallelRunsAgreeWithEachOther(t *testing.T) {
	s := core.StandardWorlds(false)["s6"]
	opt := s.Options
	opt.Workers = 4

	a, err := core.Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Screen(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(violationKeys(a.Result), violationKeys(b.Result)) {
		t.Errorf("two parallel runs disagree:\n a=%q\n b=%q",
			violationKeys(a.Result), violationKeys(b.Result))
	}
	for i := range a.Result.Violations {
		va, vb := a.Result.Violations[i], b.Result.Violations[i]
		if va.Property != vb.Property || va.Desc != vb.Desc {
			t.Errorf("violation %d ordering differs: (%s,%s) vs (%s,%s)",
				i, va.Property, va.Desc, vb.Property, vb.Desc)
		}
	}
}

// TestCampaignParallelMatchesSequential runs the whole phase-1 sweep
// sequentially and with campaign parallelism and compares per-world
// outcomes.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	seq, err := core.ScreenWorlds(core.ScopedModels(), nil, core.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.ScreenWorlds(core.ScopedModels(), nil, core.CampaignOptions{Parallel: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Finding != par[i].Finding {
			t.Fatalf("result %d order differs: %s vs %s", i, seq[i].Finding, par[i].Finding)
		}
		if got, want := violationKeys(par[i].Result), violationKeys(seq[i].Result); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: violation set mismatch:\n got %q\nwant %q", seq[i].Finding, got, want)
		}
		if par[i].Result.States != seq[i].Result.States {
			t.Errorf("%s: states = %d, want %d", seq[i].Finding, par[i].Result.States, seq[i].Result.States)
		}
	}
}

// TestCampaignBudgetTruncates shares a tiny state budget across the
// sweep and asserts the pool is exhausted and every world truncates
// rather than overshooting it.
func TestCampaignBudgetTruncates(t *testing.T) {
	results, err := core.ScreenWorlds(core.ScopedModels(), nil, core.CampaignOptions{StateBudget: 50})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range results {
		total += r.Result.States
	}
	if total > 50 {
		t.Errorf("campaign explored %d states, budget was 50", total)
	}
	truncated := 0
	for _, r := range results {
		if r.Result.Truncated {
			truncated++
		}
	}
	if truncated == 0 {
		t.Error("no world reported truncation under a 50-state budget")
	}
}

// TestCampaignCancelOnViolation asserts the first-violation switch
// stops the campaign early: at least one later world must be cut short
// (the scoped defective worlds all violate, so without cancellation
// every result would be complete).
func TestCampaignCancelOnViolation(t *testing.T) {
	results, err := core.ScreenWorlds(core.ScopedModels(), nil, core.CampaignOptions{CancelOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for _, r := range results {
		if r.Violated() {
			violated = true
		}
	}
	if !violated {
		t.Fatal("campaign found no violation at all")
	}
	// The first world already violates, so everything after it must
	// have been cancelled before completing its exploration.
	full, err := core.ScreenWorlds(core.ScopedModels(), nil, core.CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	saved := 0
	for i := range results {
		if results[i].Result.States < full[i].Result.States {
			saved++
		}
	}
	if saved == 0 {
		t.Error("CancelOnViolation explored every world in full")
	}
}
