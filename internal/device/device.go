// Package device provides the user-level phone abstraction of the
// validation experiments (§3.3): a Phone wraps the emulated dual-mode
// protocol stack behind the actions a tester performs — power cycling,
// dialing and hanging up, toggling mobile data, moving, and switching
// to WiFi — and exposes the observable status (serving system,
// registration, service availability).
//
// The five handset models used in the paper (HTC One, LG Optimus G,
// Samsung Galaxy S4, Galaxy Note 2, iPhone 5S) are modeled through
// their observed behavioral quirks: some deactivate all PDP contexts
// when WiFi takes over (§5.1.3), and the tested phones re-attempt an
// attach before detaching when no context survives the 4G return,
// prolonging the out-of-service window (the Figure 4 implementation
// observation).
package device

import (
	"fmt"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

// Model identifies a handset model with its quirks.
type Model struct {
	Name string
	// DeactivatePDPOnWiFi reproduces §5.1.3: "While staying in 3G,
	// some (here, HTC One and LG Optimus G) deactivate all PDP
	// contexts" when a WiFi network becomes available.
	DeactivatePDPOnWiFi bool
	// ReattachExtraDelay is the model-specific additional recovery
	// latency on the S1 re-attach (Figure 4: "Similar results are
	// observed at other phones (median gap < 0.5s)").
	ReattachExtraDelay time.Duration
}

// Models returns the paper's five tested handsets.
func Models() []Model {
	return []Model{
		{Name: "HTC One", DeactivatePDPOnWiFi: true, ReattachExtraDelay: 200 * time.Millisecond},
		{Name: "LG Optimus G", DeactivatePDPOnWiFi: true, ReattachExtraDelay: 300 * time.Millisecond},
		{Name: "Samsung Galaxy S4", ReattachExtraDelay: 0},
		{Name: "Samsung Galaxy Note 2", ReattachExtraDelay: 400 * time.Millisecond},
		{Name: "Apple iPhone 5S", ReattachExtraDelay: 250 * time.Millisecond},
	}
}

// ModelByName looks a model up.
func ModelByName(name string) (Model, bool) {
	for _, m := range Models() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Status is the phone's user-visible state.
type Status struct {
	// System is the serving RAT (none/3G/4G).
	System types.System
	// Registered4G / Registered3GCS / Registered3GPS are the
	// registration states.
	Registered4G, Registered3GCS, Registered3GPS bool
	// DataContext reports whether a session context (PDP or EPS
	// bearer) is alive.
	DataContext bool
	// InCall reports an active voice call.
	InCall bool
	// OutOfService is the S1/S2/S6 symptom: detached by the network
	// while service was wanted.
	OutOfService bool
	// StuckReturnPending is the S3 symptom: a return to 4G is owed but
	// unserved.
	StuckReturnPending bool
}

func (s Status) String() string {
	return fmt.Sprintf("sys=%s reg4g=%v reg3gcs=%v reg3gps=%v ctx=%v call=%v oos=%v stuck=%v",
		s.System, s.Registered4G, s.Registered3GCS, s.Registered3GPS,
		s.DataContext, s.InCall, s.OutOfService, s.StuckReturnPending)
}

// Phone is a tester-facing handset bound to an emulated world.
type Phone struct {
	Model   Model
	Profile netemu.OperatorProfile
	w       *netemu.World
}

// New builds a phone of the given model on the operator with the fix
// set, backed by a fresh emulated world.
func New(model Model, profile netemu.OperatorProfile, fixes netemu.FixSet, seed int64) *Phone {
	w := netemu.NewWorld(seed)
	netemu.StandardStack(w, profile, fixes)
	return &Phone{Model: model, Profile: profile, w: w}
}

// World exposes the underlying emulated world (tests, trace analysis).
func (p *Phone) World() *netemu.World { return p.w }

// Trace returns the phone-side trace records collected so far (§3.3).
func (p *Phone) Trace() []trace.Record { return p.w.Collector.Records() }

// run lets all pending signaling drain.
func (p *Phone) run() { p.w.Run() }

// PowerOn attaches to the given system (4G phones attach to 4G; 3G-only
// testing uses Sys3G, which performs the combined CS+PS 3G attach).
func (p *Phone) PowerOn(sys types.System) {
	switch sys {
	case types.Sys4G:
		p.w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	case types.Sys3G:
		p.w.SetGlobal(names.GSys, int(types.Sys3G))
		p.w.Inject(names.UEMM, types.Message{Kind: types.MsgPowerOn})
		p.w.Inject(names.UEGMM, types.Message{Kind: types.MsgPowerOn})
	}
	p.run()
}

// PowerOff detaches everywhere.
func (p *Phone) PowerOff() {
	for _, proc := range []string{names.UEEMM, names.UEGMM, names.UEMM, names.UESM, names.UEESM, names.UECM, names.UERRC3G, names.UERRC4G} {
		p.w.Inject(proc, types.Message{Kind: types.MsgPowerOff})
	}
	p.run()
}

// DataOn enables mobile data (activating the session context in the
// serving system).
func (p *Phone) DataOn() {
	p.w.SetGlobal(names.GDataOn, 1)
	switch types.System(p.w.Global(names.GSys)) {
	case types.Sys4G:
		p.w.Inject(names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
	case types.Sys3G:
		p.w.Inject(names.UERRC3G, types.Message{Kind: types.MsgUserDataOn})
		p.w.Inject(names.UESM, types.Message{Kind: types.MsgUserDataOn})
	}
	p.run()
}

// DataOff disables mobile data.
func (p *Phone) DataOff() {
	p.w.SetGlobal(names.GDataOn, 0)
	p.w.Inject(names.UERRC3G, types.Message{Kind: types.MsgUserDataOff})
	p.w.Inject(names.UERRC4G, types.Message{Kind: types.MsgUserDataOff})
	p.run()
}

// Dial starts an outgoing call (CSFB when camped on 4G).
func (p *Phone) Dial() {
	p.w.Inject(names.UECM, types.Message{Kind: types.MsgUserDialCall})
	p.run()
}

// HangUp ends the call; after a CSFB call this raises the return-to-4G
// obligation (S3).
func (p *Phone) HangUp() {
	p.w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
	p.run()
}

// Move crosses a location/routing/tracking area boundary.
func (p *Phone) Move() {
	for _, proc := range []string{names.UEMM, names.UEGMM, names.UEEMM} {
		p.w.Inject(proc, types.Message{Kind: types.MsgUserMove})
	}
	p.run()
}

// SwitchToWiFi models a WiFi network taking over data: quirky models
// deactivate all PDP contexts (§5.1.3).
func (p *Phone) SwitchToWiFi() {
	if p.Model.DeactivatePDPOnWiFi {
		p.w.Inject(names.UESM, types.Message{Kind: types.MsgWiFiAvailable})
	}
	p.run()
}

// SwitchTo3G performs a network-side 4G→3G migration (mobility or
// carrier-initiated).
func (p *Phone) SwitchTo3G() {
	p.w.Inject(names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
	p.run()
}

// ReturnTo4G attempts the 3G→4G switch (cell reselection + TAU).
func (p *Phone) ReturnTo4G() {
	p.w.Inject(names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
	p.run()
}

// Reattach runs the Figure 4 recovery: the operator-side processing
// delay plus the model quirk, then the re-attach; it returns the total
// recovery time observed.
func (p *Phone) Reattach() time.Duration {
	start := p.w.Sim.Now()
	delay := p.Profile.Reattach.Sample(p.w.Sim.Rand()) + p.Model.ReattachExtraDelay
	p.w.InjectAt(start+delay, names.UEEMM, types.Message{Kind: types.MsgPeriodicTimer})
	p.run()
	return p.w.Sim.Now() - start
}

// Status reads the user-visible state.
func (p *Phone) Status() Status {
	g := p.w.Global
	return Status{
		System:             types.System(g(names.GSys)),
		Registered4G:       g(names.GReg4G) == 1,
		Registered3GCS:     g(names.GReg3GCS) == 1,
		Registered3GPS:     g(names.GReg3GPS) == 1,
		DataContext:        g(names.GPDP) == 1 || g(names.GEPS) == 1,
		InCall:             g(names.GCallActive) == 1,
		OutOfService:       g(names.GDetachedByNet) == 1,
		StuckReturnPending: g(names.GWantReturn4G) == 1,
	}
}

// RingIncoming delivers a mobile-terminated call: the MSC pages the
// device; on 4G the page triggers an MT-CSFB fallback and the phone
// auto-answers in 3G (§3.3's answer tool).
func (p *Phone) RingIncoming() {
	p.w.Inject(names.MSCCM, types.Message{Kind: types.MsgPagingRequest})
	p.run()
}

// NewVoLTE builds a phone whose voice runs over LTE (§2) instead of
// CSFB — the deployment that sidesteps S3 and S6 entirely.
func NewVoLTE(model Model, profile netemu.OperatorProfile, fixes netemu.FixSet, seed int64) *Phone {
	w := netemu.NewWorld(seed)
	netemu.VoLTEStack(w, profile, fixes)
	return &Phone{Model: model, Profile: profile, w: w}
}
