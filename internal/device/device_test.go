package device

import (
	"testing"

	"cnetverifier/internal/netemu"
	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

func s4() Model {
	m, ok := ModelByName("Samsung Galaxy S4")
	if !ok {
		panic("model missing")
	}
	return m
}

func TestModels(t *testing.T) {
	ms := Models()
	if len(ms) != 5 {
		t.Fatalf("models = %d, want the paper's 5", len(ms))
	}
	quirky := 0
	for _, m := range ms {
		if m.Name == "" {
			t.Fatal("unnamed model")
		}
		if m.DeactivatePDPOnWiFi {
			quirky++
		}
	}
	// §5.1.3: HTC One and LG Optimus G.
	if quirky != 2 {
		t.Fatalf("WiFi-quirk models = %d, want 2", quirky)
	}
	if _, ok := ModelByName("Nokia 3310"); ok {
		t.Fatal("unknown model found")
	}
}

func TestPowerOn4G(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys4G)
	st := p.Status()
	if st.System != types.Sys4G || !st.Registered4G || !st.DataContext {
		t.Fatalf("status = %s", st)
	}
	if len(p.Trace()) == 0 {
		t.Fatal("no trace records")
	}
}

func TestPowerOn3G(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys3G)
	st := p.Status()
	if st.System != types.Sys3G || !st.Registered3GCS || !st.Registered3GPS {
		t.Fatalf("status = %s", st)
	}
}

func TestCallLifecycle3G(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys3G)
	p.Dial()
	if st := p.Status(); !st.InCall {
		t.Fatalf("not in call: %s", st)
	}
	p.HangUp()
	if st := p.Status(); st.InCall {
		t.Fatalf("still in call: %s", st)
	}
}

// Full S1 via the phone API: attach in 4G → migrate to 3G → lose the
// PDP context → return → out of service; recovery via Reattach.
func TestS1EndToEndPerModel(t *testing.T) {
	for _, m := range Models() {
		p := New(m, netemu.OPII(), netemu.FixSet{}, 7)
		p.PowerOn(types.Sys4G)
		p.SwitchTo3G()
		if st := p.Status(); !st.DataContext {
			t.Fatalf("%s: context lost during migration: %s", m.Name, st)
		}
		// Deactivate the PDP context (unavoidable cause).
		p.World().Inject("ue.sm", types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseInsufficientResources})
		p.World().Run()
		p.ReturnTo4G()
		if st := p.Status(); !st.OutOfService {
			t.Fatalf("%s: S1 not reproduced: %s", m.Name, st)
		}
		rec := p.Reattach()
		if st := p.Status(); st.OutOfService || !st.Registered4G {
			t.Fatalf("%s: recovery failed: %s", m.Name, st)
		}
		if rec < m.ReattachExtraDelay {
			t.Fatalf("%s: recovery %v below model delay", m.Name, rec)
		}
	}
}

// §5.1.3's WiFi quirk: quirky models lose their PDP context on WiFi
// offload and strand themselves after the 4G return; quirk-free models
// are safe.
func TestWiFiQuirkStrandsQuirkyModels(t *testing.T) {
	for _, m := range Models() {
		p := New(m, netemu.OPII(), netemu.FixSet{}, 3)
		p.PowerOn(types.Sys4G)
		p.SwitchTo3G()
		p.SwitchToWiFi()
		p.ReturnTo4G()
		st := p.Status()
		if m.DeactivatePDPOnWiFi && !st.OutOfService {
			t.Errorf("%s: WiFi quirk did not strand the device: %s", m.Name, st)
		}
		if !m.DeactivatePDPOnWiFi && st.OutOfService {
			t.Errorf("%s: quirk-free model stranded: %s", m.Name, st)
		}
	}
}

// S3 via the phone API, per operator policy.
func TestCSFBReturnPolicy(t *testing.T) {
	run := func(profile netemu.OperatorProfile, fixes netemu.FixSet) Status {
		p := New(s4(), profile, fixes, 5)
		p.PowerOn(types.Sys4G)
		p.DataOn()
		p.Dial()
		if st := p.Status(); !st.InCall || st.System != types.Sys3G {
			t.Fatalf("CSFB call not established in 3G: %s", st)
		}
		p.HangUp()
		return p.Status()
	}
	if st := run(netemu.OPI(), netemu.FixSet{}); st.System != types.Sys4G {
		t.Fatalf("OP-I redirect should return to 4G: %s", st)
	}
	if st := run(netemu.OPII(), netemu.FixSet{}); st.System != types.Sys3G || !st.StuckReturnPending {
		t.Fatalf("OP-II reselection should strand the device: %s", st)
	}
	if st := run(netemu.OPII(), netemu.AllFixes()); st.System != types.Sys4G {
		t.Fatalf("CSFB tag fix should return the device: %s", st)
	}
}

// The fixes make the S1 flow clean through the phone API.
func TestS1FixedViaPhone(t *testing.T) {
	p := New(s4(), netemu.OPII(), netemu.AllFixes(), 7)
	p.PowerOn(types.Sys4G)
	p.SwitchTo3G()
	p.World().Inject("ue.sm", types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseInsufficientResources})
	p.World().Run()
	p.ReturnTo4G()
	st := p.Status()
	if st.OutOfService || !st.DataContext {
		t.Fatalf("fixed phone stranded: %s", st)
	}
}

func TestMoveTriggersUpdates(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys3G)
	before := len(trace.Filter{Contains: types.MsgLocationUpdateRequest.String()}.Apply(p.Trace()))
	p.Move()
	after := len(trace.Filter{Contains: types.MsgLocationUpdateRequest.String()}.Apply(p.Trace()))
	if after <= before {
		t.Fatal("move did not trigger a location update")
	}
}

func TestPowerOffClearsState(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys4G)
	p.DataOn()
	p.PowerOff()
	st := p.Status()
	if st.Registered4G || st.DataContext || st.InCall {
		t.Fatalf("power off left state: %s", st)
	}
}

func TestDataToggle(t *testing.T) {
	p := New(s4(), netemu.OPI(), netemu.FixSet{}, 1)
	p.PowerOn(types.Sys3G)
	p.DataOn()
	if st := p.Status(); !st.DataContext {
		t.Fatalf("data on failed: %s", st)
	}
	p.DataOff()
	// DataOff releases the radio; the PDP context remains unless
	// deactivated — the S3 distinction between radio state and
	// session context.
	if got := p.World().Machine("ue.rrc3g").State(); got != "RRC-IDLE" {
		t.Fatalf("RRC state after data off = %s", got)
	}
}

// MT-CSFB via the phone API: a page in 4G falls back, answers in 3G,
// and the hang-up is subject to the same S3 policy hazard.
func TestMTCSFBViaPhone(t *testing.T) {
	p := New(s4(), netemu.OPII(), netemu.FixSet{}, 9)
	p.PowerOn(types.Sys4G)
	p.DataOn()
	p.RingIncoming()
	st := p.Status()
	if !st.InCall || st.System != types.Sys3G {
		t.Fatalf("MT CSFB failed: %s", st)
	}
	p.HangUp()
	if st := p.Status(); !st.StuckReturnPending {
		t.Fatalf("MT CSFB hang-up should raise the S3 hazard on OP-II: %s", st)
	}
}

// The VoLTE what-if: the exact scenario that strands a CSFB phone on
// OP-II is harmless on a VoLTE phone.
func TestVoLTEPhoneAvoidsS3(t *testing.T) {
	p := NewVoLTE(s4(), netemu.OPII(), netemu.FixSet{}, 5)
	p.PowerOn(types.Sys4G)
	p.DataOn()
	p.Dial()
	st := p.Status()
	if !st.InCall || st.System != types.Sys4G {
		t.Fatalf("VoLTE call not in 4G: %s", st)
	}
	p.HangUp()
	if st := p.Status(); st.StuckReturnPending || st.System != types.Sys4G {
		t.Fatalf("VoLTE phone stranded: %s", st)
	}
}
