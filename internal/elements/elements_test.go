package elements

import (
	"testing"
	"time"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
)

func fullSub() Subscription {
	return Subscription{Allowed4G: true, Allowed3G: true}
}

func TestProvisionAndAttach(t *testing.T) {
	h := NewHSS()
	h.Provision("001", fullSub())
	cause, err := h.Attach("001", types.Sys4G, 10)
	if err != nil || cause != types.CauseNone {
		t.Fatalf("attach: %v / %v", cause, err)
	}
	loc, ok := h.Locate("001")
	if !ok || loc.System != types.Sys4G || loc.Area != 10 {
		t.Fatalf("locate = %+v / %v", loc, ok)
	}
	if got := h.Subscribers(); len(got) != 1 || got[0] != "001" {
		t.Fatalf("subscribers = %v", got)
	}
}

func TestAttachPolicy(t *testing.T) {
	h := NewHSS()
	h.Provision("barred", Subscription{Allowed4G: true, Allowed3G: true, Barred: true})
	h.Provision("3gonly", Subscription{Allowed3G: true})

	if cause, err := h.Attach("unknown", types.Sys4G, 1); err == nil || cause != types.CausePLMNNotAllowed {
		t.Fatal("unknown subscriber attached")
	}
	if cause, err := h.Attach("barred", types.Sys4G, 1); err == nil || cause != types.CauseOperatorDeterminedBarring {
		t.Fatal("barred subscriber attached")
	}
	if cause, err := h.Attach("3gonly", types.Sys4G, 1); err == nil || cause != types.CausePLMNNotAllowed {
		t.Fatal("3G-only subscription attached on 4G")
	}
	if _, err := h.Attach("3gonly", types.Sys3G, 1); err != nil {
		t.Fatalf("3G attach failed: %v", err)
	}
	if _, err := h.Attach("3gonly", types.System(9), 1); err == nil {
		t.Fatal("bad system accepted")
	}
}

func TestDetachAndUpdate(t *testing.T) {
	h := NewHSS()
	h.Provision("001", fullSub())
	if err := h.UpdateLocation("001", types.Sys4G, 5); err == nil {
		t.Fatal("update before attach accepted")
	}
	h.Attach("001", types.Sys4G, 1)
	if err := h.UpdateLocation("001", types.Sys3G, 7); err != nil {
		t.Fatal(err)
	}
	loc, _ := h.Locate("001")
	if loc.System != types.Sys3G || loc.Area != 7 {
		t.Fatalf("loc = %+v", loc)
	}
	h.Detach("001")
	if _, ok := h.Locate("001"); ok {
		t.Fatal("located after detach")
	}
}

func TestPager(t *testing.T) {
	h := NewHSS()
	h.Provision("001", fullSub())
	p := &Pager{HSS: h}

	if got := p.Page("001"); got != PageUnknown {
		t.Fatalf("unattached page = %v", got)
	}
	h.Attach("001", types.Sys3G, 3)
	if got := p.Page("001"); got != PageAnswered {
		t.Fatalf("attached page = %v", got)
	}
	// Stale location: the device moved to area 4 but never updated
	// (the §6.1 hazard).
	p.Reach = func(imsi IMSI, loc Location) bool { return loc.Area == 4 }
	if got := p.Page("001"); got != PageNoResponse {
		t.Fatalf("stale-location page = %v", got)
	}
	for _, r := range []PageResult{PageAnswered, PageNoResponse, PageUnknown, PageResult(9)} {
		if r.String() == "" {
			t.Fatal("empty PageResult string")
		}
	}
}

// The §6.3 consequence end-to-end: after the S6 detach the subscriber
// is unreachable — incoming calls are missed; with the fix the page
// succeeds.
func TestS6MakesSubscriberUnreachable(t *testing.T) {
	run := func(fixes netemu.FixSet) PageResult {
		w := netemu.NewWorld(1)
		netemu.StandardStack(w, netemu.OPI(), fixes)
		h := NewHSS()
		h.Provision("001", fullSub())
		tr := &WorldTracker{HSS: h, IMSI: "001", W: w, Area: 1}

		w.InjectAt(0, names.UEEMM, types.Message{Kind: types.MsgPowerOn})
		w.InjectAt(time.Second, names.MSCMM, types.Message{Kind: types.MsgLUFailureSignal})
		w.InjectAt(2*time.Second, names.UERRC4G, types.Message{Kind: types.MsgNetSwitchOrder})
		w.InjectAt(10*time.Second, names.UEEMM, types.Message{Kind: types.MsgInterSystemCellReselect})
		w.Run()
		tr.Sync()

		p := &Pager{HSS: h}
		return p.Page("001")
	}

	if got := run(netemu.FixSet{}); got != PageUnknown {
		t.Fatalf("defective stack: page = %v, want unknown (missed call)", got)
	}
	if got := run(netemu.AllFixes()); got != PageAnswered {
		t.Fatalf("fixed stack: page = %v, want answered", got)
	}
}

func TestWorldTrackerStates(t *testing.T) {
	w := netemu.NewWorld(1)
	netemu.StandardStack(w, netemu.OPI(), netemu.FixSet{})
	h := NewHSS()
	h.Provision("001", fullSub())
	tr := &WorldTracker{HSS: h, IMSI: "001", W: w, Area: 2}

	// Not registered anywhere.
	tr.Sync()
	if _, ok := h.Locate("001"); ok {
		t.Fatal("located while unregistered")
	}

	// 4G registration.
	w.Inject(names.UEEMM, types.Message{Kind: types.MsgPowerOn})
	w.Run()
	tr.Sync()
	loc, ok := h.Locate("001")
	if !ok || loc.System != types.Sys4G {
		t.Fatalf("loc = %+v / %v", loc, ok)
	}

	// Migrate to 3G.
	w.Inject(names.UEGMM, types.Message{Kind: types.MsgInterSystemSwitchCommand})
	w.Run()
	tr.Sync()
	loc, ok = h.Locate("001")
	if !ok || loc.System != types.Sys3G {
		t.Fatalf("after switch: loc = %+v / %v", loc, ok)
	}
}
