// Package elements models the core-network elements' subscriber-facing
// state (Figure 1): the HSS — the home subscriber server both systems
// share — with per-subscriber subscription and location records, and
// the paging function the MSC/MME use to reach a device for
// mobile-terminated services.
//
// The protocol machines (internal/protocols) own the signaling; this
// package owns the bookkeeping those machines imply: who is attached
// where, whether a subscription is barred (Table 3's "operator
// determined barring"), and whether an incoming call can reach the
// user — the concrete damage of a stale or lost registration ("Without
// it, the network cannot route incoming calls to the user", §6.1; "The
// user may miss incoming calls", §6.3).
package elements

import (
	"fmt"
	"sort"
	"sync"

	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
)

// IMSI identifies a subscriber.
type IMSI string

// Subscription is the HSS's per-subscriber policy record.
type Subscription struct {
	// Allowed4G/Allowed3G gate the systems the subscription covers.
	Allowed4G, Allowed3G bool
	// Barred is operator-determined barring (Table 3).
	Barred bool
}

// Location is a subscriber's last registered position.
type Location struct {
	System types.System
	// Area is the location/routing/tracking area code.
	Area int
}

// Registration is the HSS's view of one subscriber.
type Registration struct {
	Sub      Subscription
	Attached bool
	Loc      Location
}

// HSS is the home subscriber server (present in both the 3G and 4G
// cores, Figure 1).
type HSS struct {
	mu   sync.Mutex
	subs map[IMSI]*Registration
}

// NewHSS returns an empty subscriber database.
func NewHSS() *HSS {
	return &HSS{subs: make(map[IMSI]*Registration)}
}

// Provision creates or replaces a subscription.
func (h *HSS) Provision(imsi IMSI, sub Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.subs[imsi] = &Registration{Sub: sub}
}

// Subscribers lists provisioned IMSIs in sorted order.
func (h *HSS) Subscribers() []IMSI {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]IMSI, 0, len(h.subs))
	for imsi := range h.subs {
		out = append(out, imsi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Attach registers the subscriber on a system, enforcing subscription
// policy. It returns the reject cause for denied attaches.
func (h *HSS) Attach(imsi IMSI, sys types.System, area int) (types.Cause, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.subs[imsi]
	if !ok {
		return types.CausePLMNNotAllowed, fmt.Errorf("elements: unknown subscriber %s", imsi)
	}
	if r.Sub.Barred {
		return types.CauseOperatorDeterminedBarring, fmt.Errorf("elements: subscriber %s barred", imsi)
	}
	switch sys {
	case types.Sys4G:
		if !r.Sub.Allowed4G {
			return types.CausePLMNNotAllowed, fmt.Errorf("elements: %s not allowed on 4G", imsi)
		}
	case types.Sys3G:
		if !r.Sub.Allowed3G {
			return types.CausePLMNNotAllowed, fmt.Errorf("elements: %s not allowed on 3G", imsi)
		}
	default:
		return types.CauseNetworkFailure, fmt.Errorf("elements: bad system %v", sys)
	}
	r.Attached = true
	r.Loc = Location{System: sys, Area: area}
	return types.CauseNone, nil
}

// Detach deregisters the subscriber.
func (h *HSS) Detach(imsi IMSI) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if r, ok := h.subs[imsi]; ok {
		r.Attached = false
	}
}

// UpdateLocation records a location/routing/tracking area update.
func (h *HSS) UpdateLocation(imsi IMSI, sys types.System, area int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.subs[imsi]
	if !ok || !r.Attached {
		return fmt.Errorf("elements: update for unregistered subscriber %s", imsi)
	}
	r.Loc = Location{System: sys, Area: area}
	return nil
}

// Locate returns the last registered location.
func (h *HSS) Locate(imsi IMSI) (Location, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.subs[imsi]
	if !ok || !r.Attached {
		return Location{}, false
	}
	return r.Loc, true
}

// PageResult classifies a mobile-terminated reachability attempt.
type PageResult uint8

// Page outcomes.
const (
	// PageAnswered: the device was reachable and responded.
	PageAnswered PageResult = iota + 1
	// PageNoResponse: the device was registered but did not respond
	// (stale location — the §6.1 hazard of unserved updates).
	PageNoResponse
	// PageUnknown: the subscriber is not registered (the §6.3 hazard
	// of an out-of-service device: the call is missed).
	PageUnknown
)

func (p PageResult) String() string {
	switch p {
	case PageAnswered:
		return "answered"
	case PageNoResponse:
		return "no response"
	case PageUnknown:
		return "unknown subscriber"
	default:
		return fmt.Sprintf("PageResult(%d)", uint8(p))
	}
}

// Pager routes mobile-terminated pages via the HSS location registry.
type Pager struct {
	HSS *HSS
	// Reach checks whether the device actually listens at the
	// registered location (area mismatch = stale registration).
	Reach func(imsi IMSI, loc Location) bool
}

// Page attempts to reach the subscriber for an incoming service.
func (p *Pager) Page(imsi IMSI) PageResult {
	loc, ok := p.HSS.Locate(imsi)
	if !ok {
		return PageUnknown
	}
	if p.Reach != nil && !p.Reach(imsi, loc) {
		return PageNoResponse
	}
	return PageAnswered
}

// WorldTracker mirrors an emulated device's registration into the HSS,
// bridging the protocol machines' shared context to the subscriber
// registry. Call Sync after the world settles.
type WorldTracker struct {
	HSS  *HSS
	IMSI IMSI
	W    *netemu.World
	// Area is the area code reported on updates.
	Area int
}

// Sync reads the world's registration globals into the HSS. The
// subscriber is located on the *serving* system (GSys): a device camped
// on 3G keeps its 4G EMM registration (§5.1.1), but pages must be
// routed through 3G.
func (t *WorldTracker) Sync() {
	sys := types.System(t.W.Global(names.GSys))
	reg4g := t.W.Global(names.GReg4G) == 1
	reg3g := t.W.Global(names.GReg3GCS) == 1 || t.W.Global(names.GReg3GPS) == 1
	detached := t.W.Global(names.GDetachedByNet) == 1
	switch {
	case detached:
		t.HSS.Detach(t.IMSI)
	case sys == types.Sys4G && reg4g:
		_, _ = t.HSS.Attach(t.IMSI, types.Sys4G, t.Area)
	case sys == types.Sys3G && (reg3g || reg4g):
		_, _ = t.HSS.Attach(t.IMSI, types.Sys3G, t.Area)
	default:
		t.HSS.Detach(t.IMSI)
	}
}
