package model

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// tickerSpec consumes periodic-timer expiries in both states, toggles
// IDLE/BUSY on data on/off (the labels the lifecycle hooks key on), and
// optionally pings a peer on every tick so timed runs exercise queues.
func tickerSpec(peer string) *fsm.Spec {
	tickAction := func(c fsm.Ctx, e fsm.Event) {
		c.Set("ticks", c.Get("ticks")+1)
		if peer != "" {
			c.Send(peer, types.Message{Kind: types.MsgPowerOn})
		}
	}
	return &fsm.Spec{
		Name: "ticker",
		Init: "IDLE",
		Vars: map[string]int{"ticks": 0},
		Transitions: []fsm.Transition{
			{Name: "tick", From: "IDLE", On: types.MsgPeriodicTimer, To: "IDLE", Action: tickAction},
			{Name: "tick-busy", From: "BUSY", On: types.MsgPeriodicTimer, To: "BUSY", Action: tickAction},
			{Name: "work", From: "IDLE", On: types.MsgUserDataOn, To: "BUSY"},
			{Name: "rest", From: "BUSY", On: types.MsgUserDataOff, To: "IDLE"},
			{Name: "wake", From: "IDLE", On: types.MsgPowerOn, To: "IDLE"},
			{Name: "wake-busy", From: "BUSY", On: types.MsgPowerOn, To: "BUSY"},
		},
	}
}

// timedWorld is the timing test fixture: two tickers with overlapping
// periodic windows plus a guard timer that is hook-armed by "work",
// hook-cancelled by "rest", and discard-fires (no MsgLinkFailure
// transition exists) when left to expire.
func timedWorld(t testing.TB) *World {
	t.Helper()
	w, err := New(Config{Procs: []ProcConfig{
		{Name: "A", Spec: tickerSpec("B")},
		{Name: "B", Spec: tickerSpec("")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.EnableTiming(timedWorldDefs()); err != nil {
		t.Fatal(err)
	}
	return w
}

func timedWorldDefs() []TimerDef {
	return []TimerDef{
		{Name: "TA", Proc: "A", Msg: types.Message{Kind: types.MsgPeriodicTimer},
			Lo: 3, Hi: 5, ArmOnStart: true, Periodic: true},
		{Name: "TG", Proc: "A", Msg: types.Message{Kind: types.MsgLinkFailure},
			Lo: 2, Hi: 6, ArmOn: []string{"work"}, CancelOn: []string{"rest"}},
		{Name: "TB", Proc: "B", Msg: types.Message{Kind: types.MsgPeriodicTimer},
			Lo: 1, Hi: 4, ArmOnStart: true, Periodic: true},
	}
}

func timedEnv() []EnvEvent {
	return []EnvEvent{
		{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}},
		{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOff}},
	}
}

func TestEnableTimingValidation(t *testing.T) {
	base := func() *World {
		w, err := New(Config{Procs: []ProcConfig{{Name: "A", Spec: tickerSpec("")}}})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	msg := types.Message{Kind: types.MsgPeriodicTimer}
	cases := []struct {
		name string
		defs []TimerDef
	}{
		{"no name", []TimerDef{{Proc: "A", Msg: msg, Hi: 1}}},
		{"negative lo", []TimerDef{{Name: "T", Proc: "A", Msg: msg, Lo: -1, Hi: 1}}},
		{"hi below lo", []TimerDef{{Name: "T", Proc: "A", Msg: msg, Lo: 2, Hi: 1}}},
		{"hi over cap", []TimerDef{{Name: "T", Proc: "A", Msg: msg, Hi: timerBoundMax + 1}}},
		{"no message", []TimerDef{{Name: "T", Proc: "A", Hi: 1}}},
		{"unknown proc", []TimerDef{{Name: "T", Proc: "nope", Msg: msg, Hi: 1}}},
		{"duplicate", []TimerDef{
			{Name: "T", Proc: "A", Msg: msg, Hi: 1},
			{Name: "T", Proc: "A", Msg: msg, Hi: 2},
		}},
	}
	for _, tc := range cases {
		if err := base().EnableTiming(tc.defs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Empty defs leave the world untimed, and an untimed world rejects
	// timer steps outright.
	w := base()
	if err := w.EnableTiming(nil); err != nil || w.TimingEnabled() {
		t.Fatalf("empty defs: err=%v timed=%v", err, w.TimingEnabled())
	}
	if _, err := w.Apply(Step{Kind: StepTimer, Proc: "A", Msg: types.Message{Kind: types.MsgPeriodicTimer, From: "T"}}); err == nil {
		t.Fatal("timer step applied on an untimed world")
	}
}

// Save/Apply/Restore must round-trip the complete timed state: the
// encoding, the virtual clock, and the armed-timer set all come back
// exactly, whatever step was applied in between (testing/quick over the
// walk seed).
func TestTimingSaveRestoreRoundtrip(t *testing.T) {
	env := timedEnv()
	prop := func(seed int64) bool {
		w := timedWorld(t)
		rng := rand.New(rand.NewSource(seed))
		var u Undo
		for i := 0; i < 40; i++ {
			steps := w.Steps(env)
			if len(steps) == 0 {
				break
			}
			s := steps[rng.Intn(len(steps))]
			enc, now, armed := w.Encode(nil), w.Now(), w.ArmedTimers()
			w.Save(&u)
			if _, err := w.Apply(s); err != nil {
				return false
			}
			w.Restore(&u)
			if !bytes.Equal(enc, w.Encode(nil)) || w.Now() != now || !reflect.DeepEqual(armed, w.ArmedTimers()) {
				return false
			}
			// The restored state must accept the same step again.
			if _, err := w.Apply(s); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(20140817))}); err != nil {
		t.Fatal(err)
	}
}

// The virtual clock is monotone along every path: no applied step —
// delivery, env, expiry, discard-fire — ever decreases it.
func TestTimingClockMonotone(t *testing.T) {
	env := timedEnv()
	prop := func(seed int64) bool {
		w := timedWorld(t)
		rng := rand.New(rand.NewSource(seed))
		last := w.Now()
		for i := 0; i < 60; i++ {
			steps := w.Steps(env)
			if len(steps) == 0 {
				break
			}
			if _, err := w.Apply(steps[rng.Intn(len(steps))]); err != nil {
				return false
			}
			if w.Now() < last {
				return false
			}
			last = w.Now()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(20140817))}); err != nil {
		t.Fatal(err)
	}
}

// Zone-abstraction soundness: two worlds differing only by an absolute
// time shift are indistinguishable — same encoding, same enumerated
// steps — and stay indistinguishable under any common step (the
// inductive argument for keying the visited table on zone-relative
// windows).
func TestTimingShiftInvariance(t *testing.T) {
	env := timedEnv()
	prop := func(seed int64, shift uint16) bool {
		w := timedWorld(t)
		v := w.Clone()
		v.ShiftTime(int64(shift))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 30; i++ {
			if !bytes.Equal(w.Encode(nil), v.Encode(nil)) {
				return false
			}
			ws, vs := w.Steps(env), v.Steps(env)
			if !reflect.DeepEqual(ws, vs) {
				return false
			}
			if len(ws) == 0 {
				break
			}
			s := ws[rng.Intn(len(ws))]
			if _, err := w.Apply(s); err != nil {
				return false
			}
			if _, err := v.Apply(s); err != nil {
				return false
			}
			if v.Now()-w.Now() != int64(shift) {
				return false // the shift itself is preserved, never encoded
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(20140817))}); err != nil {
		t.Fatal(err)
	}
}

// The transition-label lifecycle hooks: "work" arms the guard timer,
// "rest" cancels it, and an expired guard discard-fires (TransIdx = -1)
// without re-arming.
func TestTimerLifecycleHooks(t *testing.T) {
	w := timedWorld(t)
	names := func() []string {
		var out []string
		for _, a := range w.ArmedTimers() {
			out = append(out, a.Proc+"/"+a.Name)
		}
		return out
	}
	if got := names(); !reflect.DeepEqual(got, []string{"A/TA", "B/TB"}) {
		t.Fatalf("initial armed = %v", got)
	}

	applyEnv := func(kind types.MsgKind) {
		t.Helper()
		steps := w.StepsEnvAppend(nil, []EnvEvent{{Proc: "A", Msg: types.Message{Kind: kind}}})
		if len(steps) != 1 {
			t.Fatalf("env %s: steps = %v", kind, steps)
		}
		if _, err := w.Apply(steps[0]); err != nil {
			t.Fatal(err)
		}
	}

	applyEnv(types.MsgUserDataOn) // "work" arms TG
	if got := names(); !reflect.DeepEqual(got, []string{"A/TA", "A/TG", "B/TB"}) {
		t.Fatalf("after work: armed = %v", got)
	}
	tg := w.ArmedTimers()[1]
	if tg.Lo-w.Now() != 2 || tg.Hi-w.Now() != 6 {
		t.Fatalf("TG window = [%d, %d] at now %d", tg.Lo, tg.Hi, w.Now())
	}
	applyEnv(types.MsgUserDataOff) // "rest" cancels TG
	if got := names(); !reflect.DeepEqual(got, []string{"A/TA", "B/TB"}) {
		t.Fatalf("after rest: armed = %v", got)
	}

	// Re-arm TG and let it discard-fire: A has no MsgLinkFailure
	// transition, so the expiry consumes the timer with no machine step
	// and no re-arm (TG is not periodic).
	applyEnv(types.MsgUserDataOn)
	var fire *Step
	for _, s := range w.StepsTimerAppend(nil) {
		if s.Msg.From == "TG" {
			s := s
			fire = &s
		}
	}
	if fire == nil || fire.TransIdx != -1 {
		t.Fatalf("no discard-fire offered for TG: %v", fire)
	}
	stateBefore := w.Proc("A").M.State()
	if _, err := w.Apply(*fire); err != nil {
		t.Fatal(err)
	}
	if got := names(); !reflect.DeepEqual(got, []string{"A/TA", "B/TB"}) {
		t.Fatalf("after TG discard-fire: armed = %v", got)
	}
	if w.Proc("A").M.State() != stateBefore {
		t.Fatal("discard-fire stepped the machine")
	}
	if w.Now() < 2 {
		t.Fatalf("discard-fire did not advance the clock into TG's window: now = %d", w.Now())
	}

	// A periodic timer re-arms itself with a fresh window on firing.
	for _, s := range w.StepsTimerAppend(nil) {
		if s.Msg.From == "TB" {
			if _, err := w.Apply(s); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	armed := w.ArmedTimers()
	if len(armed) != 2 || armed[1].Name != "TB" || armed[1].Lo != w.Now()+1 || armed[1].Hi != w.Now()+4 {
		t.Fatalf("TB not re-armed fresh: %v at now %d", armed, w.Now())
	}
}

// The expiry admissibility rule: a timer may fire only if its earliest
// expiry does not overtake another armed timer's latest expiry.
func TestTimerAdmissibility(t *testing.T) {
	w, err := New(Config{Procs: []ProcConfig{{Name: "A", Spec: tickerSpec("")}}})
	if err != nil {
		t.Fatal(err)
	}
	// Tearly must fire before Tlate can: Tlate.Lo (10) > Tearly.Hi (3).
	err = w.EnableTiming([]TimerDef{
		{Name: "Tearly", Proc: "A", Msg: types.Message{Kind: types.MsgPeriodicTimer}, Lo: 1, Hi: 3, ArmOnStart: true},
		{Name: "Tlate", Proc: "A", Msg: types.Message{Kind: types.MsgPeriodicTimer}, Lo: 10, Hi: 20, ArmOnStart: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := w.StepsTimerAppend(nil)
	if len(steps) != 1 || steps[0].Msg.From != "Tearly" {
		t.Fatalf("steps = %v, want only Tearly admissible", steps)
	}
	if _, err := w.Apply(steps[0]); err != nil {
		t.Fatal(err)
	}
	// With Tearly consumed, Tlate is the only armed timer and fires.
	steps = w.StepsTimerAppend(nil)
	if len(steps) != 1 || steps[0].Msg.From != "Tlate" {
		t.Fatalf("steps after Tearly = %v, want Tlate", steps)
	}
}

// ScaleTimerBounds is copy-on-write: a clone sharing the config keeps
// the original windows, the scaled world rescales its armed instance
// from the arming instant.
func TestScaleTimerBounds(t *testing.T) {
	w := timedWorld(t)
	v := w.Clone()
	if !w.ScaleTimerBounds("A", "TA", 50, 200) {
		t.Fatal("scale reported no-op")
	}
	if w.ScaleTimerBounds("A", "nope", 50, 200) {
		t.Fatal("scaling an unknown timer reported success")
	}
	wa, va := w.ArmedTimers()[0], v.ArmedTimers()[0]
	if wa.Lo != 1 || wa.Hi != 10 { // [3, 5] scaled by 50%/200% from arm=0
		t.Fatalf("scaled TA window = [%d, %d], want [1, 10]", wa.Lo, wa.Hi)
	}
	if va.Lo != 3 || va.Hi != 5 {
		t.Fatalf("clone's TA window changed: [%d, %d]", va.Lo, va.Hi)
	}
}
