package model

import (
	"fmt"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Project builds a sub-world containing only the named processes,
// copying their current machine states, queued messages and channel
// flags from w. The globals slab is copied whole (globals a projected
// process never touches stay constant, so they cost encoding bytes but
// no state-space growth), and OutputTo lists are filtered to the kept
// processes. The relative process order of w is preserved, so step
// enumeration over the projection is deterministic in the same way.
//
// Projection is the mechanism behind check.Options.POR: when the static
// effect analysis (internal/lint/effects) proves a world decomposes
// into non-interacting clusters, the checker explores each cluster's
// projection instead of their product. Environment events targeting
// processes outside the projection are skipped by StepsEnvAppend, so a
// shared scenario drives every projection unchanged.
func (w *World) Project(names []string) (*World, error) {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := w.procIdx[n]; !ok {
			return nil, fmt.Errorf("model: project: unknown process %q", n)
		}
		keep[n] = true
	}
	var sel []int
	for i, p := range w.Procs {
		if keep[p.Name] {
			sel = append(sel, i)
		}
	}
	n := len(sel)
	pw := &World{
		Procs:    make([]*Proc, n),
		Chans:    make([]*Channel, n),
		procIdx:  make(map[string]int, n),
		chanIdx:  make(map[string]int, n),
		procs:    make([]Proc, n),
		chans:    make([]Channel, n),
		machines: make([]fsm.Machine, n),
	}
	pw.Stats = w.Stats
	pw.glay = w.glay
	pw.gvals = append([]int32(nil), w.gvals...)
	for j, i := range sel {
		src := w.Procs[i]
		src.M.CloneInto(&pw.machines[j])
		var outs []string
		for _, dst := range src.OutputTo {
			if keep[dst] {
				outs = append(outs, dst)
			}
		}
		pw.procs[j] = Proc{Name: src.Name, M: &pw.machines[j], OutputTo: outs}
		pw.procIdx[src.Name] = j
		pw.Procs[j] = &pw.procs[j]

		sc := w.Chan(src.Name)
		dc := &pw.chans[j]
		if sc != nil {
			dc.Name, dc.Cap, dc.Lossy, dc.Reorder = sc.Name, sc.Cap, sc.Lossy, sc.Reorder
			dc.Queue = append([]types.Message(nil), sc.Queue...)
		} else {
			dc.Name = src.Name
		}
		pw.chanIdx[src.Name] = j
		pw.Chans[j] = &pw.chans[j]
	}
	// Carry the symmetry descriptor filtered to fully-kept replicas, so
	// POR cluster projections canonicalize within each cluster
	// (check.Options.POR composed with Options.Symmetry).
	if fs := w.filterSymmetry(keep); fs != nil {
		if err := pw.SetSymmetry(fs); err != nil {
			return nil, fmt.Errorf("model: project: %w", err)
		}
	}
	// Carry the virtual clock and the timers owned by kept processes,
	// so POR cluster projections explore the same admissible expiry
	// orderings within each cluster (timers of dropped processes are
	// independent of the cluster by the effect analysis's contract,
	// exactly like their message steps).
	if w.timing != nil {
		var defs []TimerDef
		kept := make(map[string]int32) // old def index -> new
		for i := range w.timing.defs {
			if keep[w.timing.defs[i].Proc] {
				kept[w.timing.defs[i].Proc+"\x00"+w.timing.defs[i].Name] = int32(len(defs))
				defs = append(defs, w.timing.defs[i])
			}
		}
		if len(defs) > 0 {
			if err := pw.EnableTiming(defs); err != nil {
				return nil, fmt.Errorf("model: project: %w", err)
			}
			pw.now = w.now
			pw.timers = pw.timers[:0]
			for _, t := range w.timers {
				d := &w.timing.defs[t.def]
				if ni, ok := kept[d.Proc+"\x00"+d.Name]; ok {
					t.def = ni
					pw.timers = append(pw.timers, t)
				}
			}
		}
	}
	return pw, nil
}
