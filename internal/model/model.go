// Package model defines the composable system model explored by the
// CNetVerifier screening phase (internal/check): a World of protocol
// processes (fsm.Machine instances) connected by message channels, plus
// shared global context variables (e.g. whether a PDP context is
// active).
//
// A World supports deterministic enumeration of its enabled steps
// (message deliveries — including lossy drops and out-of-order
// deliveries — and environment events), cloning, and canonical
// encoding/hashing so the checker can deduplicate visited states.
package model

import (
	"encoding/binary"
	"fmt"
	"sort"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Channel is a process inbox. The zero capacity means unbounded (the
// checker bounds exploration by depth instead).
type Channel struct {
	// Name equals the owning process name.
	Name string
	// Cap bounds the queue length; messages sent to a full channel are
	// dropped (models signaling overload). 0 = unbounded.
	Cap int
	// Lossy lets the checker explore dropping a deliverable message,
	// modeling unreliable RRC transfer (§5.2: "RRC does not always
	// ensure reliable delivery").
	Lossy bool
	// Reorder lets the checker deliver any queued message rather than
	// only the head, modeling signals relayed through different base
	// stations arriving out of sequence (§5.2 duplicate-signal case).
	Reorder bool
	// Queue holds pending messages in arrival order.
	Queue []types.Message
}

// Proc is a protocol process: a named machine with an inbox.
type Proc struct {
	Name string
	M    *fsm.Machine
	// OutputTo lists co-located processes that receive this process's
	// Output() messages (the cross-layer interface, e.g. UE-EMM →
	// UE-RRC on the same phone).
	OutputTo []string
}

// World is a global system state.
type World struct {
	Procs   []*Proc
	Chans   []*Channel
	Globals map[string]int

	procIdx map[string]int
	chanIdx map[string]int
	// gkeys caches the sorted global names for canonical encoding.
	// Shared across clones and rebuilt (never mutated in place) when a
	// global is added, so the hot Encode path does not re-sort.
	gkeys []string
}

// Config declares the construction of a World.
type Config struct {
	Procs   []ProcConfig
	Globals map[string]int
}

// ProcConfig declares one process and its inbox properties.
type ProcConfig struct {
	Name     string
	Spec     *fsm.Spec
	Cap      int
	Lossy    bool
	Reorder  bool
	OutputTo []string
}

// New builds a world: one inbox channel per process, all queues empty,
// machines in their initial states.
func New(cfg Config) (*World, error) {
	w := &World{
		Globals: make(map[string]int),
		procIdx: make(map[string]int),
		chanIdx: make(map[string]int),
	}
	for k, v := range cfg.Globals {
		w.Globals[k] = v
	}
	for _, pc := range cfg.Procs {
		if pc.Name == "" {
			return nil, fmt.Errorf("model: process with empty name")
		}
		if _, dup := w.procIdx[pc.Name]; dup {
			return nil, fmt.Errorf("model: duplicate process %q", pc.Name)
		}
		if err := pc.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("model: process %q: %w", pc.Name, err)
		}
		w.procIdx[pc.Name] = len(w.Procs)
		w.Procs = append(w.Procs, &Proc{Name: pc.Name, M: fsm.New(pc.Spec), OutputTo: append([]string(nil), pc.OutputTo...)})
		w.chanIdx[pc.Name] = len(w.Chans)
		w.Chans = append(w.Chans, &Channel{Name: pc.Name, Cap: pc.Cap, Lossy: pc.Lossy, Reorder: pc.Reorder})
	}
	for _, p := range w.Procs {
		for _, dst := range p.OutputTo {
			if _, ok := w.procIdx[dst]; !ok {
				return nil, fmt.Errorf("model: process %q outputs to unknown process %q", p.Name, dst)
			}
		}
	}
	return w, nil
}

// Proc returns the named process, or nil.
func (w *World) Proc(name string) *Proc {
	if i, ok := w.procIdx[name]; ok {
		return w.Procs[i]
	}
	return nil
}

// Chan returns the named inbox, or nil.
func (w *World) Chan(name string) *Channel {
	if i, ok := w.chanIdx[name]; ok {
		return w.Chans[i]
	}
	return nil
}

// Global reads a shared variable (names conventionally carry the "g."
// prefix used by fsm guards/actions).
func (w *World) Global(name string) int { return w.Globals[name] }

// SetGlobal writes a shared variable.
func (w *World) SetGlobal(name string, v int) { w.Globals[name] = v }

// Clone deep-copies the world. Specs are shared (immutable), as are
// the name-index tables and the cached sorted key slices (both are
// copy-on-write). Clone sits on the checker's hottest path — one call
// per explored transition — so it avoids every avoidable allocation.
func (w *World) Clone() *World {
	n := &World{
		Procs:   make([]*Proc, len(w.Procs)),
		Chans:   make([]*Channel, len(w.Chans)),
		Globals: make(map[string]int, len(w.Globals)),
		procIdx: w.procIdx,
		chanIdx: w.chanIdx,
		gkeys:   w.gkeys,
	}
	for i, p := range w.Procs {
		n.Procs[i] = &Proc{Name: p.Name, M: p.M.Clone(), OutputTo: p.OutputTo}
	}
	for i, c := range w.Chans {
		cc := *c
		cc.Queue = append([]types.Message(nil), c.Queue...)
		n.Chans[i] = &cc
	}
	for k, v := range w.Globals {
		n.Globals[k] = v
	}
	return n
}

// Encode appends a canonical binary encoding of the full global state.
func (w *World) Encode(buf []byte) []byte {
	for _, p := range w.Procs {
		buf = append(buf, p.Name...)
		buf = append(buf, ':')
		buf = p.M.Encode(buf)
		buf = append(buf, ';')
	}
	var tmp [8]byte
	for _, c := range w.Chans {
		buf = append(buf, c.Name...)
		buf = append(buf, '[')
		for _, m := range c.Queue {
			binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Kind))
			buf = append(buf, tmp[:2]...)
			binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Cause))
			buf = append(buf, tmp[:2]...)
			binary.LittleEndian.PutUint32(tmp[:4], m.Seq)
			buf = append(buf, tmp[:4]...)
			buf = append(buf, byte(m.System), byte(m.Domain), byte(m.Proto))
			buf = append(buf, m.From...)
			buf = append(buf, ',')
		}
		buf = append(buf, ']')
	}
	for _, k := range w.globalKeys() {
		buf = append(buf, k...)
		buf = append(buf, '=')
		binary.LittleEndian.PutUint64(tmp[:], uint64(int64(w.Globals[k])))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// globalKeys returns the sorted global names, rebuilding the shared
// cache only when a machine introduced a new global since the last
// encode. Globals are never deleted, so a length match means the key
// set is current; a rebuild allocates a fresh slice so clones sharing
// the old one are unaffected.
func (w *World) globalKeys() []string {
	if len(w.gkeys) != len(w.Globals) {
		keys := make([]string, 0, len(w.Globals))
		for k := range w.Globals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w.gkeys = keys
	}
	return w.gkeys
}

// Hash returns an FNV-64a digest of the canonical encoding.
func (w *World) Hash() uint64 {
	h, _ := w.AppendHash(nil)
	return h
}

// AppendHash encodes the world into buf[:0] and returns the FNV-64a
// digest together with the (re)used buffer. Callers on hot paths keep
// the returned buffer as scratch for the next call, eliminating the
// per-state encoding allocation.
func (w *World) AppendHash(buf []byte) (uint64, []byte) {
	buf = w.Encode(buf[:0])
	// Inline FNV-64a over buf (hash/fnv forces a heap-allocated state
	// through the hash.Hash64 interface).
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return h, buf
}

// ctx implements fsm.Ctx for a process executing inside the world.
type ctx struct {
	w     *World
	p     *Proc
	notes []string
}

func (c *ctx) Get(name string) int { return c.w.Globals[name] }

func (c *ctx) Set(name string, v int) { c.w.Globals[name] = v }

func (c *ctx) Send(to string, msg types.Message) {
	msg.From = c.p.Name
	msg.To = to
	ch := c.w.Chan(to)
	if ch == nil {
		c.notes = append(c.notes, fmt.Sprintf("send to unknown %q dropped", to))
		return
	}
	if ch.Cap > 0 && len(ch.Queue) >= ch.Cap {
		c.notes = append(c.notes, fmt.Sprintf("inbox %q full, %s dropped", to, msg))
		return
	}
	ch.Queue = append(ch.Queue, msg)
}

func (c *ctx) Output(msg types.Message) {
	for _, dst := range c.p.OutputTo {
		c.Send(dst, msg)
	}
}

func (c *ctx) Trace(format string, args ...any) {
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
}
