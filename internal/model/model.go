// Package model defines the composable system model explored by the
// CNetVerifier screening phase (internal/check): a World of protocol
// processes (fsm.Machine instances) connected by message channels, plus
// shared global context variables (e.g. whether a PDP context is
// active).
//
// A World supports deterministic enumeration of its enabled steps
// (message deliveries — including lossy drops and out-of-order
// deliveries — and environment events), cloning, and canonical
// encoding/hashing so the checker can deduplicate visited states.
//
// State is stored flat: the machines of a world live in one contiguous
// slab, globals in an []int32 slab behind a sorted copy-on-write
// layout, and cloning reuses destination storage via CloneInto — the
// checker's steady-state exploration path allocates nothing.
package model

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Channel is a process inbox. The zero capacity means unbounded (the
// checker bounds exploration by depth instead).
type Channel struct {
	// Name equals the owning process name.
	Name string
	// Cap bounds the queue length; messages sent to a full channel are
	// dropped (models signaling overload). 0 = unbounded.
	Cap int
	// Lossy lets the checker explore dropping a deliverable message,
	// modeling unreliable RRC transfer (§5.2: "RRC does not always
	// ensure reliable delivery").
	Lossy bool
	// Reorder lets the checker deliver any queued message rather than
	// only the head, modeling signals relayed through different base
	// stations arriving out of sequence (§5.2 duplicate-signal case).
	Reorder bool
	// Queue holds pending messages in arrival order. Every world owns
	// its queue backing (clones copy), so steps edit it in place.
	Queue []types.Message
}

// Proc is a protocol process: a named machine with an inbox.
type Proc struct {
	Name string
	M    *fsm.Machine
	// OutputTo lists co-located processes that receive this process's
	// Output() messages (the cross-layer interface, e.g. UE-EMM →
	// UE-RRC on the same phone).
	OutputTo []string
}

// Stats counts lossage observed while applying steps: messages sent to
// a process absent from the (scoped) world and messages dropped at a
// full inbox. The counters are monotone work tallies — they are
// excluded from Encode/Hash and are NOT rewound by Restore, mirroring
// how the checker counts transitions.
type Stats struct {
	// Misrouted counts sends to an unknown destination process.
	Misrouted int
	// Dropped counts sends discarded at a full inbox.
	Dropped int
}

// glayout is the sorted, copy-on-write layout of a world's globals:
// names in sorted order, each resolved to an index into the gvals
// slab. Worlds sharing an ancestry share the layout pointer until one
// of them grows a new global.
type glayout struct {
	names []string
	idx   map[string]int32

	// grown memoizes with(): under the apply/undo discipline the
	// checker repeatedly re-applies a step that introduces the same
	// global (Restore rewinds the layout pointer), so growth must not
	// rebuild the layout each time. Guarded by mu because worlds on
	// different workers share layout pointers.
	mu    sync.Mutex
	grown map[string]*glayout
}

func (g *glayout) with(name string) (*glayout, int) {
	g.mu.Lock()
	if n, ok := g.grown[name]; ok {
		g.mu.Unlock()
		return n, int(n.idx[name])
	}
	g.mu.Unlock()
	pos := sort.SearchStrings(g.names, name)
	n := &glayout{
		names: make([]string, 0, len(g.names)+1),
		idx:   make(map[string]int32, len(g.names)+1),
	}
	n.names = append(n.names, g.names[:pos]...)
	n.names = append(n.names, fsm.SymString(name))
	n.names = append(n.names, g.names[pos:]...)
	for i, k := range n.names {
		n.idx[k] = int32(i)
	}
	g.mu.Lock()
	if exist, ok := g.grown[name]; ok {
		n = exist
	} else {
		if g.grown == nil {
			g.grown = make(map[string]*glayout)
		}
		g.grown[name] = n
	}
	g.mu.Unlock()
	return n, int(n.idx[name])
}

// World is a global system state.
type World struct {
	Procs []*Proc
	Chans []*Channel
	// Stats accumulates misroute/drop counts across applied steps.
	Stats Stats

	// procs/chans/machines are the backing slabs for Procs/Chans; each
	// Proc's M points into the machines slab so a world's entire
	// machine state is one contiguous copy.
	procs    []Proc
	chans    []Channel
	machines []fsm.Machine

	procIdx map[string]int
	chanIdx map[string]int

	// glay/gvals hold the globals: a shared sorted layout plus this
	// world's value slab.
	glay  *glayout
	gvals []int32

	// sym/symRes are the replica-symmetry descriptor and its resolved
	// process indices (see symmetry.go); both are immutable after
	// SetSymmetry and shared by clones.
	sym    *Symmetry
	symRes *symResolution

	// timing is the immutable timer-definition table (timing.go),
	// shared by clones; now is the monotone virtual clock and timers
	// the armed-timer set, both part of the logical state
	// (Save/Restore and CloneInto carry them, Encode appends their
	// zone abstraction).
	timing *timingConfig
	now    int64
	timers []armedTimer

	// scratch, enbuf and symScratch are reusable per-world working
	// storage for Steps/Apply/EncodeCanonical (never shared between
	// worlds; CloneInto skips them).
	scratch    *ctx
	enbuf      []int
	symScratch *symScratch
}

// Config declares the construction of a World.
type Config struct {
	Procs   []ProcConfig
	Globals map[string]int
}

// ProcConfig declares one process and its inbox properties.
type ProcConfig struct {
	Name     string
	Spec     *fsm.Spec
	Cap      int
	Lossy    bool
	Reorder  bool
	OutputTo []string
}

// New builds a world: one inbox channel per process, all queues empty,
// machines in their initial states.
func New(cfg Config) (*World, error) {
	n := len(cfg.Procs)
	w := &World{
		Procs:   make([]*Proc, 0, n),
		Chans:   make([]*Channel, 0, n),
		procIdx: make(map[string]int, n),
		chanIdx: make(map[string]int, n),
		// The slabs are sized exactly: growing them would move the
		// machines out from under the Proc.M pointers.
		procs:    make([]Proc, n),
		chans:    make([]Channel, n),
		machines: make([]fsm.Machine, n),
	}
	w.glay = &glayout{idx: make(map[string]int32, len(cfg.Globals))}
	for k := range cfg.Globals {
		w.glay.names = append(w.glay.names, fsm.SymString(k))
	}
	sort.Strings(w.glay.names)
	w.gvals = make([]int32, len(w.glay.names))
	for i, k := range w.glay.names {
		w.glay.idx[k] = int32(i)
		w.gvals[i] = int32(cfg.Globals[k])
	}
	for i, pc := range cfg.Procs {
		if pc.Name == "" {
			return nil, fmt.Errorf("model: process with empty name")
		}
		if _, dup := w.procIdx[pc.Name]; dup {
			return nil, fmt.Errorf("model: duplicate process %q", pc.Name)
		}
		if err := pc.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("model: process %q: %w", pc.Name, err)
		}
		w.machines[i] = *fsm.New(pc.Spec)
		w.procs[i] = Proc{Name: pc.Name, M: &w.machines[i], OutputTo: append([]string(nil), pc.OutputTo...)}
		w.procIdx[pc.Name] = i
		w.Procs = append(w.Procs, &w.procs[i])
		w.chans[i] = Channel{Name: pc.Name, Cap: pc.Cap, Lossy: pc.Lossy, Reorder: pc.Reorder}
		w.chanIdx[pc.Name] = i
		w.Chans = append(w.Chans, &w.chans[i])
	}
	for _, p := range w.Procs {
		for _, dst := range p.OutputTo {
			if _, ok := w.procIdx[dst]; !ok {
				return nil, fmt.Errorf("model: process %q outputs to unknown process %q", p.Name, dst)
			}
		}
	}
	return w, nil
}

// Proc returns the named process, or nil.
func (w *World) Proc(name string) *Proc {
	if i, ok := w.procIdx[name]; ok {
		return w.Procs[i]
	}
	return nil
}

// ProcIndex returns the position of the named process in Procs. The
// checker uses it to tally per-transition counters by index instead of
// building string keys on the hot path.
func (w *World) ProcIndex(name string) (int, bool) {
	i, ok := w.procIdx[name]
	return i, ok
}

// Chan returns the named inbox, or nil.
func (w *World) Chan(name string) *Channel {
	if i, ok := w.chanIdx[name]; ok {
		return w.Chans[i]
	}
	return nil
}

// Global reads a shared variable (names conventionally carry the "g."
// prefix used by fsm guards/actions).
func (w *World) Global(name string) int {
	if w.glay == nil {
		return 0
	}
	if i, ok := w.glay.idx[name]; ok {
		return int(w.gvals[i])
	}
	return 0
}

// SetGlobal writes a shared variable. New names grow the layout
// copy-on-write: clones sharing the old layout are unaffected, and the
// layout stays sorted so the canonical encoding remains a pure
// function of the logical state.
func (w *World) SetGlobal(name string, v int) {
	if w.glay == nil {
		w.glay = &glayout{idx: map[string]int32{}}
	}
	if i, ok := w.glay.idx[name]; ok {
		w.gvals[i] = int32(v)
		return
	}
	lay, pos := w.glay.with(name)
	w.glay = lay
	w.gvals = append(w.gvals, 0)
	copy(w.gvals[pos+1:], w.gvals[pos:])
	w.gvals[pos] = int32(v)
}

// HasGlobal reports whether the named global has been initialized.
func (w *World) HasGlobal(name string) bool {
	if w.glay == nil {
		return false
	}
	_, ok := w.glay.idx[name]
	return ok
}

// GlobalsMap materializes the globals as a fresh name→value map (for
// reporting and replay seeding; not a hot path).
func (w *World) GlobalsMap() map[string]int {
	out := make(map[string]int)
	if w.glay == nil {
		return out
	}
	for i, k := range w.glay.names {
		out[k] = int(w.gvals[i])
	}
	return out
}

// Clone deep-copies the world. Specs, name-index tables and the global
// layout are shared (immutable or copy-on-write).
func (w *World) Clone() *World {
	n := &World{}
	w.CloneInto(n)
	return n
}

// CloneInto makes dst a deep copy of w, reusing dst's slabs and queue
// capacity when present — the zero-allocation clone behind the
// checker's world pool. dst's scratch storage is kept (never shared).
func (w *World) CloneInto(dst *World) {
	// Iterate the public pointer slices, not the backing slabs, so
	// worlds assembled by hand (tests build World{Procs: ...} directly)
	// clone correctly; the copy always lands in dst's slabs.
	np, nc := len(w.Procs), len(w.Chans)
	if cap(dst.procs) < np || cap(dst.chans) < nc {
		dst.procs = make([]Proc, np)
		dst.chans = make([]Channel, nc)
		dst.machines = make([]fsm.Machine, np)
		dst.Procs = make([]*Proc, np)
		dst.Chans = make([]*Channel, nc)
	}
	dst.procs = dst.procs[:np]
	dst.chans = dst.chans[:nc]
	dst.machines = dst.machines[:np]
	dst.Procs = dst.Procs[:np]
	dst.Chans = dst.Chans[:nc]
	for i, src := range w.Procs {
		src.M.CloneInto(&dst.machines[i])
		dst.procs[i].Name = src.Name
		dst.procs[i].M = &dst.machines[i]
		dst.procs[i].OutputTo = src.OutputTo
		dst.Procs[i] = &dst.procs[i]
	}
	for i, sc := range w.Chans {
		dc := &dst.chans[i]
		dc.Name, dc.Cap, dc.Lossy, dc.Reorder = sc.Name, sc.Cap, sc.Lossy, sc.Reorder
		dc.Queue = append(dc.Queue[:0], sc.Queue...)
		dst.Chans[i] = &dst.chans[i]
	}
	dst.Stats = w.Stats
	dst.procIdx, dst.chanIdx = w.procIdx, w.chanIdx
	dst.glay = w.glay
	dst.gvals = append(dst.gvals[:0], w.gvals...)
	dst.sym, dst.symRes = w.sym, w.symRes
	dst.timing, dst.now = w.timing, w.now
	dst.timers = append(dst.timers[:0], w.timers...)
}

// Encode appends a canonical binary encoding of the full global state.
// The layout is fixed and positional: each machine's memoized encoding
// in process order, each queue as a u16 length plus fixed-width
// message records, then the globals as a u16 count plus sorted
// name/value pairs. No map iteration, no sorting, no string keys on
// the hot path.
func (w *World) Encode(buf []byte) []byte {
	var tmp [4]byte
	for _, p := range w.Procs {
		buf = p.M.Encode(buf)
	}
	for _, c := range w.Chans {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(c.Queue)))
		buf = append(buf, tmp[:2]...)
		for _, m := range c.Queue {
			binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Kind))
			buf = append(buf, tmp[:2]...)
			binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Cause))
			buf = append(buf, tmp[:2]...)
			binary.LittleEndian.PutUint32(tmp[:4], m.Seq)
			buf = append(buf, tmp[:4]...)
			buf = append(buf, byte(m.System), byte(m.Domain), byte(m.Proto))
			buf = append(buf, m.From...)
			buf = append(buf, 0)
		}
	}
	nglob := 0
	if w.glay != nil {
		nglob = len(w.glay.names)
	}
	binary.LittleEndian.PutUint16(tmp[:2], uint16(nglob))
	buf = append(buf, tmp[:2]...)
	for i := 0; i < nglob; i++ {
		buf = append(buf, w.glay.names[i]...)
		buf = append(buf, 0)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(w.gvals[i]))
		buf = append(buf, tmp[:4]...)
	}
	// Timed worlds append the zone-abstracted armed-timer section;
	// untimed encodings are byte-for-byte what they always were.
	if w.timing != nil {
		buf = w.encodeTimers(buf)
	}
	return buf
}

// Hash returns an FNV-64a digest of the canonical encoding.
func (w *World) Hash() uint64 {
	h, _ := w.AppendHash(nil)
	return h
}

// AppendHash encodes the world into buf[:0] and returns the FNV-64a
// digest together with the (re)used buffer. Callers on hot paths keep
// the returned buffer as scratch for the next call, eliminating the
// per-state encoding allocation.
func (w *World) AppendHash(buf []byte) (uint64, []byte) {
	buf = w.Encode(buf[:0])
	// Inline FNV-64a over buf (hash/fnv forces a heap-allocated state
	// through the hash.Hash64 interface).
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return h, buf
}

// ctx implements fsm.Ctx for a process executing inside the world.
type ctx struct {
	w         *World
	p         *Proc
	notes     []string
	misrouted int
	dropped   int
}

// ctxFor returns the world's reusable scratch context bound to p,
// reset for a fresh step.
func (w *World) ctxFor(p *Proc) *ctx {
	if w.scratch == nil {
		w.scratch = &ctx{}
	}
	c := w.scratch
	c.w, c.p = w, p
	c.notes = nil
	c.misrouted, c.dropped = 0, 0
	return c
}

func (c *ctx) Get(name string) int { return c.w.Global(name) }

func (c *ctx) Set(name string, v int) { c.w.SetGlobal(name, v) }

// GetI/SetI are only resolved by the machine wrapper; the world
// context never receives indexed calls.
func (c *ctx) GetI(int32) int32  { return 0 }
func (c *ctx) SetI(int32, int32) {}

func (c *ctx) Send(to string, msg types.Message) {
	msg.From = c.p.Name
	msg.To = to
	ch := c.w.Chan(to)
	if ch == nil {
		c.misrouted++
		c.w.Stats.Misrouted++
		c.notes = append(c.notes, fmt.Sprintf("send to unknown %q dropped", to))
		return
	}
	if ch.Cap > 0 && len(ch.Queue) >= ch.Cap {
		c.dropped++
		c.w.Stats.Dropped++
		c.notes = append(c.notes, fmt.Sprintf("inbox %q full, %s dropped", to, msg))
		return
	}
	ch.Queue = append(ch.Queue, msg)
}

func (c *ctx) Output(msg types.Message) {
	for _, dst := range c.p.OutputTo {
		c.Send(dst, msg)
	}
}

func (c *ctx) Trace(format string, args ...any) {
	// Most protocol traces are constant strings; skip Sprintf (and its
	// per-call allocation) when there is nothing to format. Constant
	// formats containing %-verbs with no args would previously have
	// rendered as %!v(MISSING)-style noise, so passing them through
	// verbatim only changes output that was already malformed.
	if len(args) == 0 {
		c.notes = append(c.notes, format)
		return
	}
	c.notes = append(c.notes, fmt.Sprintf(format, args...))
}

// takeNotes hands ownership of the accumulated notes to the caller.
func (c *ctx) takeNotes() []string {
	n := c.notes
	c.notes = nil
	return n
}
