//go:build race

package model

// raceEnabled gates tests whose assertions (allocation counting) are
// meaningless under the race detector's instrumented allocator.
const raceEnabled = true
