package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Symmetry declares the replica structure of a world: groups of
// interchangeable process bundles ("replicas" — e.g. the GMM+SM stack
// of one UE together with its SGSN peers) whose wholesale exchange maps
// reachable states onto reachable states. The checker uses it
// (check.Options.Symmetry) to explore the quotient under replica
// permutations: the canonical encoding sorts the per-replica
// sub-encodings lexicographically before hashing, so all n!
// permutations of a multi-UE state collapse into one visited-set entry.
//
// A declaration is sound when the replicas really are symmetric: same
// specs in the same role order, instance-local wiring (replica processes
// send only within their replica or to shared non-replica processes),
// per-replica globals confined to the replica's "g.<NS>." namespace,
// and a scenario offering the same events to every replica. The
// permutation-invariance suite (symmetry_test.go) checks the encoding
// half of this contract; core's world builders own the modeling half.
type Symmetry struct {
	Groups []SymGroup
}

// SymGroup is one orbit of interchangeable replicas.
type SymGroup struct {
	Replicas []SymReplica
}

// SymReplica names the state owned by one replica.
type SymReplica struct {
	// Procs lists the replica's process names. Position is the role:
	// Procs[j] of every replica in a group must play the same part
	// (e.g. j=0 is always the device-side GMM).
	Procs []string
	// NS is the replica's globals namespace: every global named
	// "g.<NS>.<suffix>" belongs to this replica (the fsm.NamespaceGlobals
	// convention). The sorted globals layout keeps the namespace a
	// contiguous span, so the encoder finds it by binary search.
	NS string
	// Atoms are the name fragments identifying this replica inside
	// property descriptions and step notes (e.g. ["sgsn1", "ue1"]).
	// Position is the role, like Procs. The checker rewrites violations
	// along permutations by exchanging corresponding atoms.
	Atoms []string
}

// symResolution is the per-world resolved form of a Symmetry: process
// indices instead of names. It is immutable after SetSymmetry and
// shared by clones (CloneInto preserves process order).
type symResolution struct {
	groups [][]symReplicaRes
	// rest lists the processes belonging to no replica, in world order.
	rest []int
}

type symReplicaRes struct {
	procs  []int
	prefix string // "g." + NS + "."
}

// symScratch is per-world reusable working storage for EncodeCanonical
// (never shared between worlds; CloneInto skips it, like scratch).
type symScratch struct {
	subs  [][]byte
	order []int
	spans []gspan
}

// gspan is a half-open range of globals-layout indices.
type gspan struct{ lo, hi int }

// SetSymmetry attaches a replica-symmetry descriptor to the world and
// resolves it against the current process table. Clones share the
// resolved descriptor. Passing nil detaches it (EncodeCanonical then
// degenerates to Encode).
func (w *World) SetSymmetry(sym *Symmetry) error {
	if sym == nil {
		w.sym, w.symRes = nil, nil
		return nil
	}
	if len(w.Procs) != len(w.Chans) {
		return fmt.Errorf("model: symmetry: world has %d procs but %d channels", len(w.Procs), len(w.Chans))
	}
	res := &symResolution{}
	inReplica := make(map[int]bool)
	seenNS := make(map[string]bool)
	for gi, g := range sym.Groups {
		if len(g.Replicas) == 0 {
			return fmt.Errorf("model: symmetry: group %d has no replicas", gi)
		}
		role := len(g.Replicas[0].Procs)
		grp := make([]symReplicaRes, 0, len(g.Replicas))
		for ri, r := range g.Replicas {
			if len(r.Procs) != role {
				return fmt.Errorf("model: symmetry: group %d replica %d has %d procs, want %d",
					gi, ri, len(r.Procs), role)
			}
			if r.NS == "" {
				return fmt.Errorf("model: symmetry: group %d replica %d has no namespace", gi, ri)
			}
			if seenNS[r.NS] {
				return fmt.Errorf("model: symmetry: namespace %q used by two replicas", r.NS)
			}
			seenNS[r.NS] = true
			rr := symReplicaRes{prefix: "g." + r.NS + ".", procs: make([]int, 0, role)}
			for _, name := range r.Procs {
				idx := -1
				for i, p := range w.Procs {
					if p.Name == name {
						idx = i
						break
					}
				}
				if idx < 0 {
					return fmt.Errorf("model: symmetry: unknown process %q", name)
				}
				if inReplica[idx] {
					return fmt.Errorf("model: symmetry: process %q claimed by two replicas", name)
				}
				inReplica[idx] = true
				rr.procs = append(rr.procs, idx)
			}
			grp = append(grp, rr)
		}
		res.groups = append(res.groups, grp)
	}
	for i := range w.Procs {
		if !inReplica[i] {
			res.rest = append(res.rest, i)
		}
	}
	w.sym, w.symRes = sym, res
	return nil
}

// Symmetry returns the attached replica-symmetry descriptor, or nil.
func (w *World) Symmetry() *Symmetry { return w.sym }

// filterSymmetry builds the descriptor for a projection keeping only
// the given processes: replicas survive when every one of their
// processes is kept, groups survive when any replica does (a
// single-replica group canonicalizes trivially but keeps the encoding
// layout consistent across sibling projections). Returns nil when
// nothing survives.
func (w *World) filterSymmetry(keep map[string]bool) *Symmetry {
	if w.sym == nil {
		return nil
	}
	var out Symmetry
	for _, g := range w.sym.Groups {
		var ng SymGroup
		for _, r := range g.Replicas {
			all := true
			for _, p := range r.Procs {
				if !keep[p] {
					all = false
					break
				}
			}
			if all {
				ng.Replicas = append(ng.Replicas, r)
			}
		}
		if len(ng.Replicas) > 0 {
			out.Groups = append(out.Groups, ng)
		}
	}
	if len(out.Groups) == 0 {
		return nil
	}
	return &out
}

// globalsSpan returns the half-open index range of the sorted globals
// layout carrying the given name prefix. Namespaced globals grow
// lazily (first write), so the span is recomputed per call against the
// current layout — a binary search plus a linear scan of the span.
func (w *World) globalsSpan(prefix string) (int, int) {
	if w.glay == nil {
		return 0, 0
	}
	names := w.glay.names
	lo := sort.SearchStrings(names, prefix)
	hi := lo
	for hi < len(names) && strings.HasPrefix(names[hi], prefix) {
		hi++
	}
	return lo, hi
}

// encodeQueueLocal appends the queue encoding of one channel with
// replica-relative sender names: a message sent from inside the replica
// encodes as its sender's role index (tag 1), so the bytes are
// identical across corresponding replicas; any other sender (shared
// infrastructure, the environment) encodes by name (tag 0). The other
// message fields match Encode's fixed-width record.
func (w *World) encodeQueueLocal(buf []byte, c *Channel, local []int) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(c.Queue)))
	buf = append(buf, tmp[:2]...)
	for _, m := range c.Queue {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Kind))
		buf = append(buf, tmp[:2]...)
		binary.LittleEndian.PutUint16(tmp[:2], uint16(m.Cause))
		buf = append(buf, tmp[:2]...)
		binary.LittleEndian.PutUint32(tmp[:4], m.Seq)
		buf = append(buf, tmp[:4]...)
		buf = append(buf, byte(m.System), byte(m.Domain), byte(m.Proto))
		role := -1
		for j, pi := range local {
			if w.Procs[pi].Name == m.From {
				role = j
				break
			}
		}
		if role >= 0 {
			buf = append(buf, 1, byte(role))
		} else {
			buf = append(buf, 0)
			buf = append(buf, m.From...)
			buf = append(buf, 0)
		}
	}
	return buf
}

// EncodeCanonical appends the symmetry-canonical encoding of the world:
// for each group, the replica sub-encodings (machines in role order,
// queues with replica-relative senders, the replica's namespaced
// globals span) are length-prefixed and sorted lexicographically, so
// every permutation of a group's replicas encodes identically; the
// non-replica machines, queues and globals follow positionally exactly
// as in Encode. Without a symmetry descriptor it IS Encode.
//
// The hot-path contract matches Encode: memoized machine encodings, no
// map iteration, no string building, and all working storage lives in
// the world's reusable scratch — steady state allocates nothing.
func (w *World) EncodeCanonical(buf []byte) []byte {
	if w.sym == nil || w.symRes == nil {
		return w.Encode(buf)
	}
	sc := w.symScratch
	if sc == nil {
		sc = &symScratch{}
		w.symScratch = sc
	}
	var tmp [4]byte
	sc.spans = sc.spans[:0]
	for _, grp := range w.symRes.groups {
		for len(sc.subs) < len(grp) {
			sc.subs = append(sc.subs, nil)
		}
		for ri := range grp {
			rep := &grp[ri]
			sub := sc.subs[ri][:0]
			for _, pi := range rep.procs {
				sub = w.Procs[pi].M.Encode(sub)
			}
			for _, pi := range rep.procs {
				sub = w.encodeQueueLocal(sub, w.Chans[pi], rep.procs)
			}
			lo, hi := w.globalsSpan(rep.prefix)
			sc.spans = append(sc.spans, gspan{lo, hi})
			binary.LittleEndian.PutUint16(tmp[:2], uint16(hi-lo))
			sub = append(sub, tmp[:2]...)
			for i := lo; i < hi; i++ {
				sub = append(sub, w.glay.names[i][len(rep.prefix):]...)
				sub = append(sub, 0)
				binary.LittleEndian.PutUint32(tmp[:4], uint32(w.gvals[i]))
				sub = append(sub, tmp[:4]...)
			}
			// The replica's armed timers, in definition order, keyed by
			// the replica-agnostic timer name plus the zone-relative
			// window — identical bytes across corresponding replicas
			// (timing.go requires corresponding timers to share names
			// and per-replica declaration order).
			if w.timing != nil {
				for ti := range w.timers {
					pi := int(w.timing.defProc[w.timers[ti].def])
					for _, rp := range rep.procs {
						if rp == pi {
							d := &w.timing.defs[w.timers[ti].def]
							sub = append(sub, d.Name...)
							sub = append(sub, 0)
							sub = w.encodeTimerRel(sub, &w.timers[ti])
							break
						}
					}
				}
			}
			sc.subs[ri] = sub
		}
		// Insertion-sort the replica order by sub-encoding bytes — the
		// canonicalization step. Group sizes are small (one entry per
		// UE), so insertion sort beats sort.Slice and allocates nothing.
		order := sc.order[:0]
		for i := range grp {
			j := len(order)
			for j > 0 && bytes.Compare(sc.subs[order[j-1]], sc.subs[i]) > 0 {
				j--
			}
			order = append(order, 0)
			copy(order[j+1:], order[j:])
			order[j] = i
		}
		sc.order = order
		for _, ri := range order {
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(sc.subs[ri])))
			buf = append(buf, tmp[:4]...)
			buf = append(buf, sc.subs[ri]...)
		}
	}
	for _, pi := range w.symRes.rest {
		buf = w.Procs[pi].M.Encode(buf)
	}
	for _, pi := range w.symRes.rest {
		buf = w.encodeQueueLocal(buf, w.Chans[pi], nil)
	}
	// Non-replica globals: the complement of the namespaced spans.
	nglob := 0
	if w.glay != nil {
		nglob = len(w.glay.names)
	}
	spans := sc.spans
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j-1].lo > spans[j].lo; j-- {
			spans[j-1], spans[j] = spans[j], spans[j-1]
		}
	}
	rest := nglob
	for _, s := range spans {
		rest -= s.hi - s.lo
	}
	binary.LittleEndian.PutUint16(tmp[:2], uint16(rest))
	buf = append(buf, tmp[:2]...)
	si := 0
	for i := 0; i < nglob; i++ {
		for si < len(spans) && i >= spans[si].hi {
			si++
		}
		if si < len(spans) && i >= spans[si].lo {
			i = spans[si].hi - 1
			continue
		}
		buf = append(buf, w.glay.names[i]...)
		buf = append(buf, 0)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(w.gvals[i]))
		buf = append(buf, tmp[:4]...)
	}
	// Armed timers of non-replica processes follow positionally, as in
	// Encode (replica-owned timers were folded into the sub-encodings).
	if w.timing != nil {
		for ti := range w.timers {
			pi := int(w.timing.defProc[w.timers[ti].def])
			inRest := false
			for _, rp := range w.symRes.rest {
				if rp == pi {
					inRest = true
					break
				}
			}
			if !inRest {
				continue
			}
			binary.LittleEndian.PutUint16(tmp[:2], uint16(w.timers[ti].def))
			buf = append(buf, tmp[:2]...)
			buf = w.encodeTimerRel(buf, &w.timers[ti])
		}
	}
	return buf
}

// CanonicalHash returns the FNV-64a digest of the symmetry-canonical
// encoding (EncodeCanonical), equal for permutation-equivalent worlds.
func (w *World) CanonicalHash() uint64 {
	h, _ := w.AppendCanonicalHash(nil)
	return h
}

// AppendCanonicalHash is AppendHash over the symmetry-canonical
// encoding: it encodes into buf[:0] and returns the FNV-64a digest plus
// the reused buffer.
func (w *World) AppendCanonicalHash(buf []byte) (uint64, []byte) {
	buf = w.EncodeCanonical(buf[:0])
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	return h, buf
}
