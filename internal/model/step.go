package model

import (
	"fmt"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// StepKind classifies an atomic world transition.
type StepKind uint8

const (
	// StepDeliver delivers a queued message to its process and fires
	// one enabled transition.
	StepDeliver StepKind = iota + 1
	// StepDrop removes a queued message without delivery (lossy
	// channel).
	StepDrop
	// StepDiscard delivers a queued message that no transition accepts;
	// the message is consumed with no state change (NAS discards
	// unexpected messages).
	StepDiscard
	// StepEnv injects an environment event (user action, timer,
	// operator decision) and fires one enabled transition.
	StepEnv
	// StepTimer fires an armed virtual-time timer (timing.go): the
	// clock advances into the timer's window and the expiry message
	// fires one enabled transition, or none (TransIdx = -1, a
	// discard-fire consuming the expiry).
	StepTimer
)

func (k StepKind) String() string {
	switch k {
	case StepDeliver:
		return "deliver"
	case StepDrop:
		return "drop"
	case StepDiscard:
		return "discard"
	case StepEnv:
		return "env"
	case StepTimer:
		return "timer"
	default:
		return fmt.Sprintf("StepKind(%d)", uint8(k))
	}
}

// Step is one atomic transition of the world. Steps are value types so
// counterexample paths can be stored and replayed.
type Step struct {
	Kind StepKind
	// Proc is the process acting.
	Proc string
	// Pos is the queue index of the message (Deliver/Drop/Discard).
	Pos int
	// TransIdx is the index of the fired transition in the process's
	// spec (Deliver/Env).
	TransIdx int
	// Msg is the message delivered, dropped or injected.
	Msg types.Message
	// Label names the fired transition (filled by Apply).
	Label string
	// Notes carries trace output emitted while applying the step.
	Notes []string
	// Misrouted and Dropped count sends lost while applying this step
	// (unknown destination / full inbox); filled by Apply. The checker
	// sums them into its Result.
	Misrouted int
	Dropped   int
}

func (s Step) String() string {
	switch s.Kind {
	case StepDrop:
		return fmt.Sprintf("%s: DROP %s", s.Proc, s.Msg)
	case StepDiscard:
		return fmt.Sprintf("%s: discard %s", s.Proc, s.Msg)
	case StepEnv:
		return fmt.Sprintf("%s: env %s -> %s", s.Proc, s.Msg, s.Label)
	case StepTimer:
		if s.TransIdx < 0 {
			return fmt.Sprintf("%s: timer %s fires (unconsumed)", s.Proc, s.Msg.From)
		}
		return fmt.Sprintf("%s: timer %s fires -> %s", s.Proc, s.Msg.From, s.Label)
	default:
		return fmt.Sprintf("%s: recv %s -> %s", s.Proc, s.Msg, s.Label)
	}
}

// EnvEvent is a candidate environment event offered by a scenario.
type EnvEvent struct {
	// Proc is the process the event targets.
	Proc string
	// Msg is the event payload.
	Msg types.Message
}

// Steps enumerates every enabled step of the world: for each process
// with a non-empty inbox, the deliverable positions (head only, or all
// positions when the channel reorders) with each enabled transition
// branch, plus drop steps for lossy channels, plus the offered
// environment events that have at least one enabled transition.
//
// Messages with no enabled transition yield a StepDiscard so that
// blocked queues cannot wedge exploration.
func (w *World) Steps(env []EnvEvent) []Step {
	return w.StepsAppend(nil, env)
}

// StepsAppend is Steps appending into a caller-owned slice — the
// allocation-free form for the checker, which keeps one steps buffer
// per search depth. Guard evaluation reuses the world's scratch
// context and enabled-index buffer.
func (w *World) StepsAppend(steps []Step, env []EnvEvent) []Step {
	steps = w.StepsQueueAppend(steps)
	steps = w.StepsEnvAppend(steps, env)
	return w.StepsTimerAppend(steps)
}

// StepsQueueAppend appends only the message-driven steps (deliveries,
// drops, discards). The fuzzing executor drains inboxes between
// environment injections with this half alone, skipping the env-guard
// evaluation StepsAppend would repeat at every drain step.
func (w *World) StepsQueueAppend(steps []Step) []Step {
	for i, p := range w.Procs {
		ch := w.Chans[i]
		if ch.Name != p.Name {
			ch = w.Chan(p.Name)
		}
		if ch == nil || len(ch.Queue) == 0 {
			continue
		}
		last := 0
		if ch.Reorder {
			last = len(ch.Queue) - 1
		}
		for pos := 0; pos <= last; pos++ {
			msg := ch.Queue[pos]
			ev := fsm.EvMsg(msg)
			w.enbuf = p.M.EnabledAppend(w.ctxFor(p), ev, w.enbuf[:0])
			if len(w.enbuf) == 0 {
				steps = append(steps, Step{Kind: StepDiscard, Proc: p.Name, Pos: pos, Msg: msg})
			}
			for _, ti := range w.enbuf {
				steps = append(steps, Step{Kind: StepDeliver, Proc: p.Name, Pos: pos, TransIdx: ti, Msg: msg})
			}
			if ch.Lossy {
				steps = append(steps, Step{Kind: StepDrop, Proc: p.Name, Pos: pos, Msg: msg})
			}
		}
	}
	return steps
}

// StepsEnvAppend appends only the environment-event steps enabled for
// the offered events — the injection half of StepsAppend.
func (w *World) StepsEnvAppend(steps []Step, env []EnvEvent) []Step {
	for _, e := range env {
		p := w.Proc(e.Proc)
		if p == nil {
			continue
		}
		ev := fsm.EvMsg(e.Msg)
		w.enbuf = p.M.EnabledAppend(w.ctxFor(p), ev, w.enbuf[:0])
		for _, ti := range w.enbuf {
			steps = append(steps, Step{Kind: StepEnv, Proc: e.Proc, TransIdx: ti, Msg: e.Msg})
		}
	}
	return steps
}

// Apply executes the step in place and returns it annotated with the
// transition label and trace notes. The step must have been produced by
// Steps on an equivalent world.
func (w *World) Apply(s Step) (Step, error) {
	p := w.Proc(s.Proc)
	if p == nil {
		return s, fmt.Errorf("model: apply: unknown process %q", s.Proc)
	}
	switch s.Kind {
	case StepDrop, StepDiscard:
		ch := w.Chan(s.Proc)
		if ch == nil || s.Pos >= len(ch.Queue) {
			return s, fmt.Errorf("model: apply: %s position %d out of range", s.Kind, s.Pos)
		}
		// In-place removal is safe: every world owns its queue backing
		// (clones copy queues), and Save/Restore snapshots them.
		ch.Queue = append(ch.Queue[:s.Pos], ch.Queue[s.Pos+1:]...)
		return s, nil
	case StepDeliver:
		ch := w.Chan(s.Proc)
		if ch == nil || s.Pos >= len(ch.Queue) {
			return s, fmt.Errorf("model: apply: deliver position %d out of range", s.Pos)
		}
		msg := ch.Queue[s.Pos]
		ch.Queue = append(ch.Queue[:s.Pos], ch.Queue[s.Pos+1:]...)
		c := w.ctxFor(p)
		tr := p.M.Apply(c, fsm.EvMsg(msg), s.TransIdx)
		s.Label = tr.Name
		s.Notes = c.takeNotes()
		s.Misrouted, s.Dropped = c.misrouted, c.dropped
		if w.timing != nil {
			w.timerHooks(s.Proc, s.Label)
		}
		return s, nil
	case StepEnv:
		c := w.ctxFor(p)
		tr := p.M.Apply(c, fsm.EvMsg(s.Msg), s.TransIdx)
		s.Label = tr.Name
		s.Notes = c.takeNotes()
		s.Misrouted, s.Dropped = c.misrouted, c.dropped
		if w.timing != nil {
			w.timerHooks(s.Proc, s.Label)
		}
		return s, nil
	case StepTimer:
		return w.applyTimer(p, s)
	default:
		return s, fmt.Errorf("model: apply: bad step kind %v", s.Kind)
	}
}

// Inject places a message directly into a process inbox (used by test
// harnesses and by the checker's initial-state setup).
func (w *World) Inject(to string, msg types.Message) error {
	ch := w.Chan(to)
	if ch == nil {
		return fmt.Errorf("model: inject: unknown process %q", to)
	}
	msg.To = to
	ch.Queue = append(ch.Queue, msg)
	return nil
}

// QueueLen returns the inbox depth of a process (0 if unknown).
func (w *World) QueueLen(proc string) int {
	if ch := w.Chan(proc); ch != nil {
		return len(ch.Queue)
	}
	return 0
}

// Quiescent reports whether no messages are pending anywhere.
func (w *World) Quiescent() bool {
	for _, c := range w.Chans {
		if len(c.Queue) > 0 {
			return false
		}
	}
	return true
}
