package model

import (
	"encoding/binary"
	"fmt"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// This file adds discrete virtual time to the world: a monotone virtual
// clock, protocol timers armed with [earliest, latest] expiry windows,
// and timer expiry as a first-class schedulable step (StepTimer). The
// design follows the zone-abstraction idea from timed model checking:
//
//   - The clock (w.now) is monotone and never encoded. Only the armed
//     timers' windows *relative to the clock* enter Encode, so the
//     visited table keys on timer orderings, not absolute timestamps,
//     and time-shifted states collapse into one entry (ShiftTime is the
//     exported soundness witness).
//   - A timer is fireable iff its earliest expiry does not overtake any
//     other armed timer's latest expiry (lo <= min over all armed hi).
//     Firing advances the clock to max(now, lo), preserving the
//     invariant now <= hi for every armed timer. Message deliveries and
//     environment events remain untimed (enabled at any clock value),
//     so the engine enumerates exactly the admissible expiry-vs-delivery
//     orderings.
//   - An expiry with no enabled transition is a discard-fire step
//     (TransIdx = -1): the timer is consumed (and re-armed when
//     periodic) with no machine step, so late timers cannot wedge
//     exploration. Discard-fires of periodic zero-width ([0,0]) timers
//     are suppressed entirely — they would be byte-identical self-loops
//     — which is what makes the degenerate-bounds configuration's state
//     graph isomorphic to the untimed one (the ci.sh differential gate).
//
// Worlds without EnableTiming are entirely unaffected: their encodings,
// step enumeration and apply paths are byte-for-byte what they were.

// TimerDef declares one protocol timer owned by a process (e.g. the
// periodic-TAU timer T3412 of a UE's EMM). Bounds are virtual-time
// ticks relative to arming: the timer may expire no earlier than Lo and
// no later than Hi after it was armed (0 <= Lo <= Hi).
type TimerDef struct {
	// Name identifies the timer within its process (e.g. "T3412"). For
	// symmetry-canonicalized worlds the name must be replica-agnostic:
	// corresponding timers of interchangeable replicas carry the same
	// name, so the canonical encoding is permutation-invariant.
	Name string
	// Proc is the owning process; expiry steps act on it.
	Proc string
	// Msg is the event delivered to the process on expiry (its From
	// field is overwritten with the timer name, making expiry steps
	// self-describing in traces and the fuzz codec).
	Msg types.Message
	// Lo and Hi bound the expiry window relative to arming. A
	// zero-width window (Lo == Hi) expires at an exact offset;
	// Lo == Hi == 0 with Periodic is the degenerate configuration whose
	// behavior is provably identical to an always-offered env event.
	Lo, Hi int64
	// ArmOnStart arms the timer when timing is enabled (EnableTiming).
	ArmOnStart bool
	// Periodic re-arms the timer when it fires (unless a hook already
	// re-armed it during the expiry transition).
	Periodic bool
	// ArmOn and CancelOn list transition labels of Proc that (re)arm or
	// cancel this timer when they fire — the spec-level hooks tying
	// timer lifecycles to protocol state changes.
	ArmOn    []string
	CancelOn []string
}

// timingConfig is the resolved, immutable timer-definition table shared
// by clones (like glayout, mutation is copy-on-write: ScaleTimerBounds
// builds a fresh config).
type timingConfig struct {
	defs []TimerDef
	// defProc resolves each def's Proc to its index in w.Procs.
	defProc []int32
}

// armedTimer is one armed instance: absolute window [lo, hi] plus the
// arming instant (kept so bound stretching can rescale in place).
// w.timers holds at most one instance per def, sorted by def index.
type armedTimer struct {
	def    int32
	arm    int64
	lo, hi int64
}

// timerBoundMax caps Hi so relative windows always fit the u32 fields
// of the canonical encoding.
const timerBoundMax = 1 << 31

// EnableTiming attaches timer definitions to the world and arms the
// ArmOnStart ones at the current clock. Passing an empty slice leaves
// the world untimed. For symmetry-canonicalized worlds, declare defs
// replica by replica in the same role order — the canonical encoding
// lists a replica's armed timers in definition order.
func (w *World) EnableTiming(defs []TimerDef) error {
	if len(defs) == 0 {
		w.timing, w.timers = nil, nil
		w.now = 0
		return nil
	}
	cfg := &timingConfig{
		defs:    append([]TimerDef(nil), defs...),
		defProc: make([]int32, len(defs)),
	}
	seen := make(map[string]bool, len(defs))
	for i := range cfg.defs {
		d := &cfg.defs[i]
		if d.Name == "" {
			return fmt.Errorf("model: timing: def %d has no name", i)
		}
		if d.Lo < 0 || d.Hi < d.Lo || d.Hi > timerBoundMax {
			return fmt.Errorf("model: timing: timer %s/%s bounds [%d, %d] invalid (want 0 <= lo <= hi <= %d)",
				d.Proc, d.Name, d.Lo, d.Hi, int64(timerBoundMax))
		}
		if d.Msg.Kind == types.MsgNone {
			return fmt.Errorf("model: timing: timer %s/%s has no expiry message", d.Proc, d.Name)
		}
		pi, ok := w.procIdx[d.Proc]
		if !ok {
			return fmt.Errorf("model: timing: timer %s owned by unknown process %q", d.Name, d.Proc)
		}
		cfg.defProc[i] = int32(pi)
		key := d.Proc + "\x00" + d.Name
		if seen[key] {
			return fmt.Errorf("model: timing: duplicate timer %s/%s", d.Proc, d.Name)
		}
		seen[key] = true
	}
	w.timing = cfg
	w.timers = w.timers[:0]
	for i := range cfg.defs {
		if cfg.defs[i].ArmOnStart {
			w.armTimer(int32(i))
		}
	}
	return nil
}

// TimingEnabled reports whether the world carries timer definitions.
func (w *World) TimingEnabled() bool { return w.timing != nil }

// Now returns the current virtual time. The clock is monotone: Apply
// never decreases it (Restore rewinds it with the rest of the state).
func (w *World) Now() int64 { return w.now }

// TimerDefs returns a copy of the timer-definition table.
func (w *World) TimerDefs() []TimerDef {
	if w.timing == nil {
		return nil
	}
	return append([]TimerDef(nil), w.timing.defs...)
}

// ArmedTimerInfo describes one armed timer for reporting and tests:
// absolute window bounds at the current clock.
type ArmedTimerInfo struct {
	Name, Proc string
	Lo, Hi     int64
}

// ArmedTimers returns the armed-timer set in definition order.
func (w *World) ArmedTimers() []ArmedTimerInfo {
	if len(w.timers) == 0 {
		return nil
	}
	out := make([]ArmedTimerInfo, 0, len(w.timers))
	for _, t := range w.timers {
		d := &w.timing.defs[t.def]
		out = append(out, ArmedTimerInfo{Name: d.Name, Proc: d.Proc, Lo: t.lo, Hi: t.hi})
	}
	return out
}

// TimerEvents returns one expiry directive per timer definition (Msg
// with From set to the timer name) — the fuzzer's timing-mutation pool.
func (w *World) TimerEvents() []EnvEvent {
	if w.timing == nil {
		return nil
	}
	out := make([]EnvEvent, 0, len(w.timing.defs))
	for i := range w.timing.defs {
		d := &w.timing.defs[i]
		msg := d.Msg
		msg.From = d.Name
		out = append(out, EnvEvent{Proc: d.Proc, Msg: msg})
	}
	return out
}

// ShiftTime translates the clock and every armed window by d. It is the
// zone-abstraction soundness witness: Encode, step enumeration and all
// property monitors are invariant under it, so states differing only by
// an absolute time shift are one visited-set entry.
func (w *World) ShiftTime(d int64) {
	w.now += d
	for i := range w.timers {
		w.timers[i].arm += d
		w.timers[i].lo += d
		w.timers[i].hi += d
	}
}

// ScaleTimerBounds rescales one timer definition's window to
// (Lo*loPct/100, Hi*hiPct/100), copy-on-write so worlds sharing the
// old config are unaffected, and rescales any armed instance from its
// arming instant. Armed windows are clamped to keep the now <= hi
// invariant. Returns false if the world is untimed or no such timer
// exists — the fuzzer's bound-stretch mutation is a no-op then.
func (w *World) ScaleTimerBounds(proc, name string, loPct, hiPct int) bool {
	if w.timing == nil || loPct < 0 || hiPct < 0 {
		return false
	}
	di := -1
	for i := range w.timing.defs {
		if w.timing.defs[i].Proc == proc && w.timing.defs[i].Name == name {
			di = i
			break
		}
	}
	if di < 0 {
		return false
	}
	cfg := &timingConfig{
		defs:    append([]TimerDef(nil), w.timing.defs...),
		defProc: w.timing.defProc,
	}
	d := &cfg.defs[di]
	d.Lo = d.Lo * int64(loPct) / 100
	d.Hi = d.Hi * int64(hiPct) / 100
	if d.Hi < d.Lo {
		d.Hi = d.Lo
	}
	if d.Hi > timerBoundMax {
		d.Hi = timerBoundMax
	}
	if d.Lo > d.Hi {
		d.Lo = d.Hi
	}
	w.timing = cfg
	for i := range w.timers {
		if w.timers[i].def != int32(di) {
			continue
		}
		t := &w.timers[i]
		t.lo, t.hi = t.arm+d.Lo, t.arm+d.Hi
		if t.hi < w.now {
			t.hi = w.now
		}
		if t.lo > t.hi {
			t.lo = t.hi
		}
	}
	return true
}

// timerArmed reports whether def di has an armed instance.
func (w *World) timerArmed(di int32) bool {
	for _, t := range w.timers {
		if t.def == di {
			return true
		}
	}
	return false
}

// armTimer (re)arms def di at the current clock, keeping w.timers
// sorted by def index with at most one instance per def.
func (w *World) armTimer(di int32) {
	d := &w.timing.defs[di]
	t := armedTimer{def: di, arm: w.now, lo: w.now + d.Lo, hi: w.now + d.Hi}
	for i := range w.timers {
		if w.timers[i].def == di {
			w.timers[i] = t
			return
		}
		if w.timers[i].def > di {
			w.timers = append(w.timers, armedTimer{})
			copy(w.timers[i+1:], w.timers[i:])
			w.timers[i] = t
			return
		}
	}
	w.timers = append(w.timers, t)
}

// cancelTimer disarms def di if armed.
func (w *World) cancelTimer(di int32) {
	for i := range w.timers {
		if w.timers[i].def == di {
			w.timers = append(w.timers[:i], w.timers[i+1:]...)
			return
		}
	}
}

// timerHooks fires the ArmOn/CancelOn lifecycle hooks of every timer
// owned by proc for the just-fired transition label. Cancels run before
// arms so a label listed in both leaves the timer armed.
func (w *World) timerHooks(proc, label string) {
	if w.timing == nil || label == "" {
		return
	}
	for di := range w.timing.defs {
		d := &w.timing.defs[di]
		if d.Proc != proc {
			continue
		}
		for _, l := range d.CancelOn {
			if l == label {
				w.cancelTimer(int32(di))
				break
			}
		}
		for _, l := range d.ArmOn {
			if l == label {
				w.armTimer(int32(di))
				break
			}
		}
	}
}

// StepsTimerAppend appends the admissible timer-expiry steps: a timer
// may fire iff its earliest expiry does not exceed any armed timer's
// latest expiry (otherwise some other timer must fire first). Each
// fireable timer contributes one StepTimer per enabled transition on
// its expiry message, or a single discard-fire (TransIdx = -1) when the
// process ignores it — except the provably unobservable discard-fire of
// a periodic zero-width timer, which is suppressed (see file comment).
func (w *World) StepsTimerAppend(steps []Step) []Step {
	if w.timing == nil || len(w.timers) == 0 {
		return steps
	}
	minHi := w.timers[0].hi
	for _, t := range w.timers[1:] {
		if t.hi < minHi {
			minHi = t.hi
		}
	}
	for pos := range w.timers {
		t := &w.timers[pos]
		if t.lo > minHi {
			continue
		}
		d := &w.timing.defs[t.def]
		p := w.Procs[w.timing.defProc[t.def]]
		msg := d.Msg
		msg.From = d.Name
		ev := fsm.EvMsg(msg)
		w.enbuf = p.M.EnabledAppend(w.ctxFor(p), ev, w.enbuf[:0])
		if len(w.enbuf) == 0 {
			if d.Periodic && d.Lo == 0 && d.Hi == 0 {
				continue
			}
			steps = append(steps, Step{Kind: StepTimer, Proc: p.Name, Pos: pos, TransIdx: -1, Msg: msg})
			continue
		}
		for _, ti := range w.enbuf {
			steps = append(steps, Step{Kind: StepTimer, Proc: p.Name, Pos: pos, TransIdx: ti, Msg: msg})
		}
	}
	return steps
}

// applyTimer executes a StepTimer: consume the armed timer, advance the
// clock into its window, fire the transition (if any) with its
// lifecycle hooks, and re-arm when periodic. Admissibility (the
// lo <= min hi rule) is an enumeration-time concern; like replayed
// drops, a recorded timer step applies verbatim.
func (w *World) applyTimer(p *Proc, s Step) (Step, error) {
	if w.timing == nil {
		return s, fmt.Errorf("model: apply: timer step %s/%s on an untimed world", s.Proc, s.Msg.From)
	}
	if s.Pos < 0 || s.Pos >= len(w.timers) {
		return s, fmt.Errorf("model: apply: timer position %d out of range", s.Pos)
	}
	t := w.timers[s.Pos]
	d := &w.timing.defs[t.def]
	if d.Proc != s.Proc || d.Name != s.Msg.From {
		return s, fmt.Errorf("model: apply: timer step %s/%s does not match armed %s/%s at position %d",
			s.Proc, s.Msg.From, d.Proc, d.Name, s.Pos)
	}
	w.timers = append(w.timers[:s.Pos], w.timers[s.Pos+1:]...)
	if t.lo > w.now {
		w.now = t.lo
	}
	if s.TransIdx >= 0 {
		c := w.ctxFor(p)
		tr := p.M.Apply(c, fsm.EvMsg(s.Msg), s.TransIdx)
		s.Label = tr.Name
		s.Notes = c.takeNotes()
		s.Misrouted, s.Dropped = c.misrouted, c.dropped
		w.timerHooks(s.Proc, tr.Name)
	}
	if d.Periodic && !w.timerArmed(t.def) {
		w.armTimer(t.def)
	}
	return s, nil
}

// encodeTimers appends the zone-abstracted armed-timer section: a u16
// count, then per armed timer (definition order) the u16 def index and
// the u32 window bounds relative to the clock. The earliest bound
// clamps at zero — an already-fireable timer's overdue amount is
// behaviorally irrelevant (firing sets now = max(now, lo), a no-op when
// lo <= now), so states differing only there correctly collapse.
func (w *World) encodeTimers(buf []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(w.timers)))
	buf = append(buf, tmp[:2]...)
	for i := range w.timers {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(w.timers[i].def))
		buf = append(buf, tmp[:2]...)
		buf = w.encodeTimerRel(buf, &w.timers[i])
	}
	return buf
}

// encodeTimerRel appends one timer's zone-relative window (the shared
// tail of the plain and canonical encodings).
func (w *World) encodeTimerRel(buf []byte, t *armedTimer) []byte {
	var tmp [4]byte
	rl := t.lo - w.now
	if rl < 0 {
		rl = 0
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(rl))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(t.hi-w.now))
	buf = append(buf, tmp[:4]...)
	return buf
}
