package model

import (
	"reflect"
	"testing"

	"cnetverifier/internal/types"
)

// projWorld is a four-process world shaped for projection tests: two
// independent ping/pong pairs (A→B, C→D) plus an Output wire from A to
// both B and C so OutputTo filtering has something to cut.
func projWorld(t *testing.T) *World {
	t.Helper()
	w, err := New(Config{
		Procs: []ProcConfig{
			{Name: "A", Spec: pingSpec("B"), OutputTo: []string{"B", "C"}},
			{Name: "B", Spec: pongSpec()},
			{Name: "C", Spec: pingSpec("D")},
			{Name: "D", Spec: pongSpec()},
		},
		Globals: map[string]int{"g.total": 0, "g.flag": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestProjectStateFidelity pins what a projection carries over: the
// selected machines' current control state and variables, their queued
// messages, the whole globals slab — all deep-copied, so stepping the
// projection never disturbs the source world.
func TestProjectStateFidelity(t *testing.T) {
	w := projWorld(t)
	// Move the A/B pair mid-flight: A has fired, B's inbox holds the
	// PowerOn, the global g.total is still 0.
	env := []EnvEvent{{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}}}
	if _, err := w.Apply(w.Steps(env)[0]); err != nil {
		t.Fatal(err)
	}

	pw, err := w.Project([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pw.Procs) != 2 || pw.Procs[0].Name != "A" || pw.Procs[1].Name != "B" {
		t.Fatalf("projected procs = %v, want [A B] in world order", pw.Procs)
	}
	if got := pw.Proc("A").M.State(); got != "SENT" {
		t.Errorf("A state = %s, want the source world's SENT", got)
	}
	if pw.QueueLen("B") != 1 {
		t.Errorf("B queue = %d, want the in-flight PowerOn copied", pw.QueueLen("B"))
	}
	if pw.Global("g.flag") != 5 || pw.Global("g.total") != 0 {
		t.Errorf("globals not carried: flag=%d total=%d", pw.Global("g.flag"), pw.Global("g.total"))
	}
	if pw.Proc("C") != nil || pw.Chan("C") != nil {
		t.Error("excluded process C leaked into the projection")
	}

	// Drain the projection to completion; the source world must not move.
	for {
		steps := pw.Steps(nil)
		if len(steps) == 0 {
			break
		}
		if _, err := pw.Apply(steps[0]); err != nil {
			t.Fatal(err)
		}
	}
	if pw.Global("g.total") != 1 {
		t.Errorf("projected run: g.total = %d, want 1", pw.Global("g.total"))
	}
	if w.Global("g.total") != 0 {
		t.Error("stepping the projection mutated the source world's globals")
	}
	if w.QueueLen("B") != 1 {
		t.Error("stepping the projection drained the source world's queue")
	}
}

// TestProjectOutputToFiltered pins the wiring cut: OutputTo entries
// pointing outside the projection are dropped, entries inside survive.
func TestProjectOutputToFiltered(t *testing.T) {
	w := projWorld(t)
	pw, err := w.Project([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if got := pw.Proc("A").OutputTo; !reflect.DeepEqual(got, []string{"B"}) {
		t.Errorf("projected OutputTo = %v, want [B] (C filtered out)", got)
	}
	if got := w.Proc("A").OutputTo; !reflect.DeepEqual(got, []string{"B", "C"}) {
		t.Errorf("source OutputTo mutated: %v", got)
	}
}

// TestProjectUnknownProc pins the error contract for a name the world
// does not have.
func TestProjectUnknownProc(t *testing.T) {
	w := projWorld(t)
	if _, err := w.Project([]string{"A", "nope"}); err == nil {
		t.Fatal("Project accepted an unknown process name")
	}
}

// TestProjectChannelFlags pins that channel capacity/lossy/reorder
// flags survive projection (drop steps must stay explorable in the
// cluster runs).
func TestProjectChannelFlags(t *testing.T) {
	w, err := New(Config{
		Procs: []ProcConfig{
			{Name: "A", Spec: pingSpec("B")},
			{Name: "B", Spec: pongSpec(), Lossy: true, Reorder: true, Cap: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pw, err := w.Project([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	ch := pw.Chan("B")
	if !ch.Lossy || !ch.Reorder || ch.Cap != 3 {
		t.Errorf("channel flags lost: %+v", ch)
	}
}

// TestProjectEnvEventsSkipAbsentProcs pins the scenario contract POR
// relies on: a shared scenario offering events for every process
// drives a projection unchanged, with events for absent processes
// silently skipped by StepsEnvAppend.
func TestProjectEnvEventsSkipAbsentProcs(t *testing.T) {
	w := projWorld(t)
	pw, err := w.Project([]string{"C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	env := []EnvEvent{
		{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}},
		{Proc: "C", Msg: types.Message{Kind: types.MsgUserDataOn}},
	}
	steps := pw.Steps(env)
	if len(steps) != 1 || steps[0].Proc != "C" || steps[0].Kind != StepEnv {
		t.Fatalf("projected steps = %v, want only C's env step", steps)
	}
}

// TestProjectEncodeDeterministic pins that two projections of the same
// world state encode identically — the checker dedups cluster states
// by encoding, so projection must not smuggle in iteration order.
func TestProjectEncodeDeterministic(t *testing.T) {
	w := projWorld(t)
	p1, err1 := w.Project([]string{"A", "B"})
	p2, err2 := w.Project([]string{"A", "B"})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(p1.Encode(nil), p2.Encode(nil)) {
		t.Error("two projections of one state encode differently")
	}
}
