package model

import (
	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// Undo is reusable snapshot storage for the world's apply/undo
// discipline: the sequential checker saves the world once per search
// node and restores after exploring each child, instead of cloning a
// world per transition. The zero value is ready to use; Save and
// Restore reuse the record's slabs across calls, so a DFS needs one
// Undo per depth and allocates only while the search deepens.
//
// Stats are deliberately NOT part of the snapshot — they are monotone
// work tallies (like the checker's transition count), not logical
// state.
type Undo struct {
	machines []fsm.MachineUndo
	queues   [][]types.Message
	glay     *glayout
	gvals    []int32
	// now/timers snapshot the virtual clock and armed-timer set. The
	// timing config pointer is not saved: steps never replace it (only
	// ScaleTimerBounds does, outside the search).
	now    int64
	timers []armedTimer
}

// Save records the world's complete logical state into u.
func (w *World) Save(u *Undo) {
	for len(u.machines) < len(w.machines) {
		u.machines = append(u.machines, fsm.MachineUndo{})
	}
	u.machines = u.machines[:len(w.machines)]
	for i := range w.machines {
		w.machines[i].Save(&u.machines[i])
	}
	for len(u.queues) < len(w.chans) {
		u.queues = append(u.queues, nil)
	}
	u.queues = u.queues[:len(w.chans)]
	for i := range w.chans {
		u.queues[i] = append(u.queues[i][:0], w.chans[i].Queue...)
	}
	u.glay = w.glay
	u.gvals = append(u.gvals[:0], w.gvals...)
	u.now = w.now
	u.timers = append(u.timers[:0], w.timers...)
}

// Restore rewinds the world to a Save point. The snapshot remains
// valid, so one Save can back out any number of applied steps in turn.
func (w *World) Restore(u *Undo) {
	for i := range w.machines {
		w.machines[i].Restore(&u.machines[i])
	}
	for i := range w.chans {
		w.chans[i].Queue = append(w.chans[i].Queue[:0], u.queues[i]...)
	}
	w.glay = u.glay
	w.gvals = append(w.gvals[:0], u.gvals...)
	w.now = u.now
	w.timers = append(w.timers[:0], u.timers...)
}

// ApplyUndo is Apply preceded by Save: it executes the step in place
// after snapshotting the world into u, so the caller can Restore to
// back the step out.
func (w *World) ApplyUndo(s Step, u *Undo) (Step, error) {
	w.Save(u)
	return w.Apply(s)
}
