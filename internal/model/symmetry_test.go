package model

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// The permutation-invariance suite: EncodeCanonical must be a complete
// invariant of replica permutation — equal bytes for permuted states
// (soundness of the quotient search merging them) and distinct bytes
// for states that no permutation relates (exactness: nothing else is
// merged). The worlds here are built by hand so the test owns both
// sides: it constructs pi(w) directly instead of trusting any search.

// symDevSpec is the device half of one replica: it dials its
// instance-local peer, tracks a local var and a namespaced global, and
// is kicked back to OFF by the shared hub's broadcast.
func symDevSpec(peer string) *fsm.Spec {
	return &fsm.Spec{
		Name: "sdev",
		Init: "OFF",
		Vars: map[string]int{"tries": 0},
		Transitions: []fsm.Transition{
			{Name: "dial", From: "OFF", On: types.MsgPowerOn, To: "REQ",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("tries", c.Get("tries")+1)
					c.Set("g.state", 1)
					c.Send(peer, types.Message{Kind: types.MsgUserDataOn})
				}},
			{Name: "ack", From: "REQ", On: types.MsgPowerOn, To: "ON",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("g.state", 2)
				}},
			{Name: "kick", From: "ON", On: types.MsgUserMove, To: "OFF",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("g.state", 0)
				}},
			{Name: "kicked-early", From: "REQ", On: types.MsgUserMove, To: "REQ"},
		},
	}
}

// symPeerSpec is the serving half of one replica: it acks the device
// and counts served requests in a namespaced global.
func symPeerSpec(dev string) *fsm.Spec {
	serve := func(c fsm.Ctx, e fsm.Event) {
		c.Set("g.served", c.Get("g.served")+1)
		c.Send(dev, types.Message{Kind: types.MsgPowerOn})
	}
	return &fsm.Spec{
		Name: "speer",
		Init: "WAIT",
		Transitions: []fsm.Transition{
			{Name: "serve", From: "WAIT", On: types.MsgUserDataOn, To: "BOUND", Action: serve},
			{Name: "reserve", From: "BOUND", On: types.MsgUserDataOn, To: "BOUND", Action: serve},
		},
	}
}

// symHubSpec is shared infrastructure outside every replica: its
// broadcast treats all devices alike (the equivariance precondition),
// and its messages land in replica queues with a non-replica sender —
// the by-name branch of the replica-relative queue encoding.
func symHubSpec(devs []string) *fsm.Spec {
	return &fsm.Spec{
		Name: "shub",
		Init: "IDLE",
		Vars: map[string]int{"kicks": 0},
		Transitions: []fsm.Transition{
			{Name: "broadcast", From: "IDLE", On: types.MsgUserMove, To: "IDLE",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("kicks", c.Get("kicks")+1)
					c.Set("g.total", c.Get("g.total")+1)
					for _, d := range devs {
						c.Send(d, types.Message{Kind: types.MsgUserMove})
					}
				}},
		},
	}
}

func symDevName(k int) string  { return fmt.Sprintf("d%d", k) }
func symPeerName(k int) string { return fmt.Sprintf("p%d", k) }
func symNS(k int) string       { return fmt.Sprintf("u%d", k) }

// newSymWorld builds n replicas (device + peer each, namespace "u<k>")
// plus a shared hub, attaches the matching Symmetry descriptor and
// returns the scenario events.
func newSymWorld(t testing.TB, n int) (*World, []EnvEvent) {
	t.Helper()
	var devs []string
	for k := 1; k <= n; k++ {
		devs = append(devs, symDevName(k))
	}
	procs := []ProcConfig{{Name: "hub", Spec: symHubSpec(devs)}}
	events := []EnvEvent{{Proc: "hub", Msg: types.Message{Kind: types.MsgUserMove}}}
	g := SymGroup{}
	for k := 1; k <= n; k++ {
		d, p, ns := symDevName(k), symPeerName(k), symNS(k)
		procs = append(procs,
			ProcConfig{Name: d, Spec: fsm.NamespaceGlobals(symDevSpec(p), ns)},
			ProcConfig{Name: p, Spec: fsm.NamespaceGlobals(symPeerSpec(d), ns)},
		)
		events = append(events, EnvEvent{Proc: d, Msg: types.Message{Kind: types.MsgPowerOn}})
		g.Replicas = append(g.Replicas, SymReplica{
			Procs: []string{d, p},
			NS:    ns,
			Atoms: []string{d, p},
		})
	}
	w, err := New(Config{Procs: procs, Globals: map[string]int{"g.total": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetSymmetry(&Symmetry{Groups: []SymGroup{g}}); err != nil {
		t.Fatal(err)
	}
	return w, events
}

// driveSym applies one enabled step per input byte (byte mod the
// enabled count), so a byte string is a deterministic schedule.
func driveSym(t testing.TB, w *World, events []EnvEvent, data []byte) {
	t.Helper()
	for _, b := range data {
		steps := w.Steps(events)
		if len(steps) == 0 {
			return
		}
		if _, err := w.Apply(steps[int(b)%len(steps)]); err != nil {
			t.Fatal(err)
		}
	}
}

// permuteSymWorld constructs pi(w) from scratch: a fresh n-replica
// world whose replica k carries the machine states, queues and
// namespaced globals of w's replica perm[k]^-1 — i.e. replica k of w
// lands at position perm[k] — with message endpoints renamed
// accordingly. Shared state (hub, un-namespaced globals) copies
// positionally.
func permuteSymWorld(t testing.TB, w *World, n int, perm []int) *World {
	t.Helper()
	pw, _ := newSymWorld(t, n)
	ren := make(map[string]string, 2*n)
	nsRen := make(map[string]string, n)
	for k := 0; k < n; k++ {
		ren[symDevName(k+1)] = symDevName(perm[k] + 1)
		ren[symPeerName(k+1)] = symPeerName(perm[k] + 1)
		nsRen["g."+symNS(k+1)+"."] = "g." + symNS(perm[k]+1) + "."
	}
	rename := func(s string) string {
		if v, ok := ren[s]; ok {
			return v
		}
		return s
	}
	for _, sp := range w.Procs {
		dp := pw.Proc(rename(sp.Name))
		dp.M.SetState(sp.M.State())
		for name := range sp.M.Spec().Vars {
			dp.M.SetVar(name, sp.M.Var(name))
		}
		sc, dc := w.Chan(sp.Name), pw.Chan(dp.Name)
		dc.Queue = dc.Queue[:0]
		for _, m := range sc.Queue {
			m.From = rename(m.From)
			m.To = rename(m.To)
			dc.Queue = append(dc.Queue, m)
		}
	}
	for name, v := range w.GlobalsMap() {
		out := name
		for from, to := range nsRen {
			if strings.HasPrefix(name, from) {
				out = to + name[len(from):]
				break
			}
		}
		pw.SetGlobal(out, v)
	}
	return pw
}

// allPerms enumerates the permutations of [0..n).
func allPerms(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	var out [][]int
	for _, sub := range allPerms(n - 1) {
		for i := 0; i <= len(sub); i++ {
			p := make([]int, 0, n)
			p = append(p, sub[:i]...)
			p = append(p, n-1)
			p = append(p, sub[i:]...)
			out = append(out, p)
		}
	}
	return out
}

// TestCanonicalEncodingPermutationInvariant is the soundness half:
// for random reachable states w and EVERY permutation pi, the
// canonical encoding (and hash) of pi(w) equals that of w.
func TestCanonicalEncodingPermutationInvariant(t *testing.T) {
	const n = 3
	perms := allPerms(n)
	prop := func(data []byte) bool {
		w, events := newSymWorld(t, n)
		if len(data) > 14 {
			data = data[:14]
		}
		driveSym(t, w, events, data)
		base := append([]byte(nil), w.EncodeCanonical(nil)...)
		baseHash := w.CanonicalHash()
		for _, perm := range perms {
			pw := permuteSymWorld(t, w, n, perm)
			if !bytes.Equal(base, pw.EncodeCanonical(nil)) {
				t.Logf("schedule %v perm %v: canonical encodings differ", data, perm)
				return false
			}
			if pw.CanonicalHash() != baseHash {
				t.Logf("schedule %v perm %v: canonical hashes differ", data, perm)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20140817))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalCollapsesWhatPlainDistinguishes pins the point of the
// exercise on a concrete pair: power on only d1 vs only d2. The plain
// encodings differ (the test would be vacuous otherwise), the
// canonical ones agree.
func TestCanonicalCollapsesWhatPlainDistinguishes(t *testing.T) {
	w1, ev1 := newSymWorld(t, 3)
	w2, ev2 := newSymWorld(t, 3)
	driveSym(t, w1, ev1[:2], []byte{1}) // env PowerOn -> d1
	driveSym(t, w2, ev2[:3], []byte{2}) // env PowerOn -> d2
	if w1.Hash() == w2.Hash() {
		t.Fatal("plain hashes agree; states should be distinguishable")
	}
	if !bytes.Equal(w1.EncodeCanonical(nil), w2.EncodeCanonical(nil)) {
		t.Fatal("canonical encodings differ for permuted states")
	}
	if w1.CanonicalHash() != w2.CanonicalHash() {
		t.Fatal("canonical hashes differ for permuted states")
	}
}

// TestCanonicalDistinguishesNonEquivalent is the exactness half:
// states that no replica permutation relates must keep distinct
// canonical encodings.
func TestCanonicalDistinguishesNonEquivalent(t *testing.T) {
	fresh := func() *World {
		w, _ := newSymWorld(t, 3)
		return w
	}
	base := fresh()

	// Multiset {7,8} vs {8,7} across replicas IS permutation-equivalent.
	w1, w2 := fresh(), fresh()
	w1.SetGlobal("g.u1.state", 7)
	w1.SetGlobal("g.u2.state", 8)
	w2.SetGlobal("g.u1.state", 8)
	w2.SetGlobal("g.u2.state", 7)
	if w1.CanonicalHash() != w2.CanonicalHash() {
		t.Fatal("swapped replica globals should canonicalize identically")
	}

	// ...but {7,8} vs {7,7} is not.
	w3 := fresh()
	w3.SetGlobal("g.u1.state", 7)
	w3.SetGlobal("g.u2.state", 7)
	if bytes.Equal(w1.EncodeCanonical(nil), w3.EncodeCanonical(nil)) {
		t.Fatal("different global multisets canonicalize identically")
	}

	// A replica-local machine var is part of the sub-encoding.
	w4 := fresh()
	w4.Proc(symDevName(1)).M.SetVar("tries", 5)
	if bytes.Equal(base.EncodeCanonical(nil), w4.EncodeCanonical(nil)) {
		t.Fatal("replica var change not reflected in canonical encoding")
	}

	// Shared globals sit outside every span and are compared verbatim.
	w5 := fresh()
	w5.SetGlobal("g.total", 3)
	if bytes.Equal(base.EncodeCanonical(nil), w5.EncodeCanonical(nil)) {
		t.Fatal("shared global change not reflected in canonical encoding")
	}

	// So is non-replica (hub) machine state.
	w6 := fresh()
	w6.Proc("hub").M.SetVar("kicks", 2)
	if bytes.Equal(base.EncodeCanonical(nil), w6.EncodeCanonical(nil)) {
		t.Fatal("hub var change not reflected in canonical encoding")
	}

	// And queued messages: an in-flight intra-replica ack.
	w7 := fresh()
	w7.Chan(symDevName(1)).Queue = append(w7.Chan(symDevName(1)).Queue,
		types.Message{Kind: types.MsgPowerOn, From: symPeerName(1), To: symDevName(1)})
	if bytes.Equal(base.EncodeCanonical(nil), w7.EncodeCanonical(nil)) {
		t.Fatal("queued message not reflected in canonical encoding")
	}
}

// TestCanonicalWithoutDescriptorIsPlain: no descriptor, EncodeCanonical
// degenerates to Encode; detaching restores that.
func TestCanonicalWithoutDescriptorIsPlain(t *testing.T) {
	w := pingPongWorld(t, false)
	if !bytes.Equal(w.Encode(nil), w.EncodeCanonical(nil)) {
		t.Fatal("EncodeCanonical != Encode on a world without a descriptor")
	}
	if w.Hash() != w.CanonicalHash() {
		t.Fatal("CanonicalHash != Hash on a world without a descriptor")
	}
	ws, ev := newSymWorld(t, 2)
	driveSym(t, ws, ev, []byte{1, 0, 2})
	if err := ws.SetSymmetry(nil); err != nil {
		t.Fatal(err)
	}
	if ws.Symmetry() != nil {
		t.Fatal("SetSymmetry(nil) did not detach the descriptor")
	}
	if !bytes.Equal(ws.Encode(nil), ws.EncodeCanonical(nil)) {
		t.Fatal("EncodeCanonical != Encode after detaching the descriptor")
	}
}

func TestSetSymmetryValidation(t *testing.T) {
	rep := func(k int) SymReplica {
		return SymReplica{
			Procs: []string{symDevName(k), symPeerName(k)},
			NS:    symNS(k),
			Atoms: []string{symDevName(k)},
		}
	}
	cases := []struct {
		name string
		sym  *Symmetry
	}{
		{"empty group", &Symmetry{Groups: []SymGroup{{}}}},
		{"role count mismatch", &Symmetry{Groups: []SymGroup{{Replicas: []SymReplica{
			rep(1), {Procs: []string{symDevName(2)}, NS: symNS(2)},
		}}}}},
		{"empty namespace", &Symmetry{Groups: []SymGroup{{Replicas: []SymReplica{
			{Procs: []string{symDevName(1), symPeerName(1)}, NS: ""},
		}}}}},
		{"duplicate namespace", &Symmetry{Groups: []SymGroup{{Replicas: []SymReplica{
			rep(1), {Procs: []string{symDevName(2), symPeerName(2)}, NS: symNS(1)},
		}}}}},
		{"unknown process", &Symmetry{Groups: []SymGroup{{Replicas: []SymReplica{
			{Procs: []string{"nobody", symPeerName(1)}, NS: symNS(1)},
		}}}}},
		{"process in two replicas", &Symmetry{Groups: []SymGroup{{Replicas: []SymReplica{
			rep(1), {Procs: []string{symDevName(1), symPeerName(2)}, NS: symNS(2)},
		}}}}},
	}
	for _, tc := range cases {
		w, _ := newSymWorld(t, 2)
		if err := w.SetSymmetry(tc.sym); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestProjectFiltersSymmetry: POR projections keep exactly the
// replicas they contain, so cluster sub-worlds canonicalize their own
// state and nothing else.
func TestProjectFiltersSymmetry(t *testing.T) {
	w, _ := newSymWorld(t, 3)

	// One replica plus the hub: a single-replica group survives.
	pw, err := w.Project([]string{symDevName(2), symPeerName(2), "hub"})
	if err != nil {
		t.Fatal(err)
	}
	sym := pw.Symmetry()
	if sym == nil || len(sym.Groups) != 1 || len(sym.Groups[0].Replicas) != 1 {
		t.Fatalf("projection descriptor = %+v, want one group with one replica", sym)
	}
	if got := sym.Groups[0].Replicas[0].NS; got != symNS(2) {
		t.Fatalf("projection kept namespace %q, want %q", got, symNS(2))
	}

	// Two whole replicas: both survive and still canonicalize.
	pw2, err := w.Project([]string{
		symDevName(1), symPeerName(1), symDevName(3), symPeerName(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sym := pw2.Symmetry(); sym == nil || len(sym.Groups[0].Replicas) != 2 {
		t.Fatalf("projection descriptor = %+v, want two replicas", sym)
	}

	// A split replica is dropped; hub alone keeps no descriptor.
	pw3, err := w.Project([]string{symDevName(1), "hub"})
	if err != nil {
		t.Fatal(err)
	}
	if sym := pw3.Symmetry(); sym != nil {
		t.Fatalf("projection with a split replica kept descriptor %+v", sym)
	}
}

// TestCloneSharesSymmetry: clones carry the resolved descriptor
// (CloneInto preserves process order) and encode identically.
func TestCloneSharesSymmetry(t *testing.T) {
	w, ev := newSymWorld(t, 3)
	driveSym(t, w, ev, []byte{0, 1, 2, 3})
	c := w.Clone()
	if c.Symmetry() != w.Symmetry() {
		t.Fatal("clone does not share the symmetry descriptor")
	}
	if !bytes.Equal(w.EncodeCanonical(nil), c.EncodeCanonical(nil)) {
		t.Fatal("clone canonical encoding differs from original")
	}
}

// TestAppendCanonicalHashAllocFree: canonicalization must match the
// plain encoder's hot-path contract — steady state allocates nothing.
func TestAppendCanonicalHashAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	w, ev := newSymWorld(t, 3)
	driveSym(t, w, ev, []byte{1, 0, 2, 4, 3, 1, 0, 2})
	var buf []byte
	for i := 0; i < 3; i++ { // warm scratch, sub buffers and machine memos
		_, buf = w.AppendCanonicalHash(buf)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_, buf = w.AppendCanonicalHash(buf)
	}); allocs != 0 {
		t.Fatalf("AppendCanonicalHash allocates %.1f per call in steady state", allocs)
	}
}

// --- timing × symmetry -------------------------------------------------

// timedSymDefs declares one replica-agnostic guard timer per device
// replica (same name, same window, same within-replica position — the
// EnableTiming contract for canonicalized worlds) plus a periodic hub
// timer owned by the shared infrastructure (the rest-partition path of
// the canonical timer encoding).
func timedSymDefs(n int) []TimerDef {
	var defs []TimerDef
	for k := 1; k <= n; k++ {
		defs = append(defs, TimerDef{
			Name: "Trep", Proc: symDevName(k),
			Msg: types.Message{Kind: types.MsgUserMove},
			Lo:  2, Hi: 7, ArmOnStart: true,
			ArmOn: []string{"dial"}, CancelOn: []string{"ack"},
		})
	}
	defs = append(defs, TimerDef{
		Name: "Thub", Proc: "hub",
		Msg: types.Message{Kind: types.MsgUserMove},
		Lo:  1, Hi: 9, ArmOnStart: true, Periodic: true,
	})
	return defs
}

func newTimedSymWorld(t testing.TB, n int) (*World, []EnvEvent) {
	w, events := newSymWorld(t, n)
	if err := w.EnableTiming(timedSymDefs(n)); err != nil {
		t.Fatal(err)
	}
	return w, events
}

// permuteTimedSymWorld extends permuteSymWorld to the timing state:
// replica k's armed timer lands at position perm[k] (the hub timer is
// positionally fixed), with its absolute window copied verbatim.
func permuteTimedSymWorld(t testing.TB, w *World, n int, perm []int) *World {
	t.Helper()
	pw := permuteSymWorld(t, w, n, perm)
	if err := pw.EnableTiming(timedSymDefs(n)); err != nil {
		t.Fatal(err)
	}
	pw.now = w.now
	pw.timers = pw.timers[:0]
	for _, tm := range w.timers {
		d := tm.def
		if int(d) < n {
			d = int32(perm[d])
		}
		pw.timers = append(pw.timers, armedTimer{def: d, arm: tm.arm, lo: tm.lo, hi: tm.hi})
	}
	sort.Slice(pw.timers, func(i, j int) bool { return pw.timers[i].def < pw.timers[j].def })
	return pw
}

// TestCanonicalTimedPermutationInvariant extends the soundness half to
// virtual time: for random reachable timed states (the drive fires,
// hook-arms and hook-cancels timers along the way) and EVERY replica
// permutation, the canonical encoding and hash of pi(w) equal w's —
// per-replica armed timers fold into the permuted sub-encodings.
func TestCanonicalTimedPermutationInvariant(t *testing.T) {
	const n = 3
	perms := allPerms(n)
	prop := func(data []byte) bool {
		w, events := newTimedSymWorld(t, n)
		if len(data) > 14 {
			data = data[:14]
		}
		driveSym(t, w, events, data)
		base := append([]byte(nil), w.EncodeCanonical(nil)...)
		baseHash := w.CanonicalHash()
		for _, perm := range perms {
			pw := permuteTimedSymWorld(t, w, n, perm)
			if !bytes.Equal(base, pw.EncodeCanonical(nil)) {
				t.Logf("schedule %v perm %v: timed canonical encodings differ", data, perm)
				return false
			}
			if pw.CanonicalHash() != baseHash {
				t.Logf("schedule %v perm %v: timed canonical hashes differ", data, perm)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(20140817))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalTimedCollapsesAndDistinguishes pins both halves on
// concrete states: "only d1's timer disarmed" and "only d2's timer
// disarmed" are permutation-equivalent (plain encodings differ, the
// canonical ones agree), while a changed armed window or a disarmed
// hub timer must stay distinguishable from the base state.
func TestCanonicalTimedCollapsesAndDistinguishes(t *testing.T) {
	const n = 3
	fresh := func() *World {
		w, _ := newTimedSymWorld(t, n)
		return w
	}
	base := fresh()

	w1, w2 := fresh(), fresh()
	w1.cancelTimer(0) // disarm d1's guard
	w2.cancelTimer(1) // disarm d2's guard
	if bytes.Equal(w1.Encode(nil), w2.Encode(nil)) {
		t.Fatal("plain encodings agree; the collapse check would be vacuous")
	}
	if !bytes.Equal(w1.EncodeCanonical(nil), w2.EncodeCanonical(nil)) {
		t.Fatal("canonical encodings differ for permuted armed-timer sets")
	}
	if w1.CanonicalHash() != w2.CanonicalHash() {
		t.Fatal("canonical hashes differ for permuted armed-timer sets")
	}
	if bytes.Equal(base.EncodeCanonical(nil), w1.EncodeCanonical(nil)) {
		t.Fatal("disarming a replica timer not reflected in canonical encoding")
	}

	w3 := fresh()
	w3.timers[0].lo++ // d1's guard window shrinks by one tick
	if bytes.Equal(base.EncodeCanonical(nil), w3.EncodeCanonical(nil)) {
		t.Fatal("changed armed window not reflected in canonical encoding")
	}

	w4 := fresh()
	w4.cancelTimer(int32(n)) // the hub timer sits in the rest partition
	if bytes.Equal(base.EncodeCanonical(nil), w4.EncodeCanonical(nil)) {
		t.Fatal("disarming the hub timer not reflected in canonical encoding")
	}
}
