//go:build !race

package model

const raceEnabled = false
