package model

import (
	"bytes"
	"testing"
	"testing/quick"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/types"
)

// pingSpec sends MsgPowerOn to a peer when poked.
func pingSpec(peer string) *fsm.Spec {
	return &fsm.Spec{
		Name: "ping",
		Init: "IDLE",
		Transitions: []fsm.Transition{
			{Name: "poke", From: "IDLE", On: types.MsgUserDataOn, To: "SENT",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Send(peer, types.Message{Kind: types.MsgPowerOn})
				}},
		},
	}
}

func pongSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "pong",
		Init: "WAIT",
		Vars: map[string]int{"got": 0},
		Transitions: []fsm.Transition{
			{Name: "recv", From: "WAIT", On: types.MsgPowerOn, To: "DONE",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Set("got", 1)
					c.Set("g.total", c.Get("g.total")+1)
				}},
		},
	}
}

func pingPongWorld(t *testing.T, lossy bool) *World {
	t.Helper()
	w, err := New(Config{
		Procs: []ProcConfig{
			{Name: "A", Spec: pingSpec("B")},
			{Name: "B", Spec: pongSpec(), Lossy: lossy},
		},
		Globals: map[string]int{"g.total": 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: []ProcConfig{{Name: "", Spec: pongSpec()}}}); err == nil {
		t.Fatal("empty proc name accepted")
	}
	if _, err := New(Config{Procs: []ProcConfig{
		{Name: "X", Spec: pongSpec()},
		{Name: "X", Spec: pongSpec()},
	}}); err == nil {
		t.Fatal("duplicate proc name accepted")
	}
	if _, err := New(Config{Procs: []ProcConfig{
		{Name: "X", Spec: pongSpec(), OutputTo: []string{"nope"}},
	}}); err == nil {
		t.Fatal("unknown OutputTo accepted")
	}
	if _, err := New(Config{Procs: []ProcConfig{
		{Name: "X", Spec: &fsm.Spec{Name: "bad"}},
	}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestDeliveryFlow(t *testing.T) {
	w := pingPongWorld(t, false)
	env := []EnvEvent{{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}}}

	steps := w.Steps(env)
	if len(steps) != 1 || steps[0].Kind != StepEnv {
		t.Fatalf("initial steps = %v, want one env step", steps)
	}
	if _, err := w.Apply(steps[0]); err != nil {
		t.Fatal(err)
	}
	if w.Proc("A").M.State() != "SENT" {
		t.Fatalf("A state = %s", w.Proc("A").M.State())
	}
	if w.QueueLen("B") != 1 {
		t.Fatalf("B queue = %d, want 1", w.QueueLen("B"))
	}

	steps = w.Steps(nil)
	if len(steps) != 1 || steps[0].Kind != StepDeliver {
		t.Fatalf("steps = %v, want one deliver", steps)
	}
	applied, err := w.Apply(steps[0])
	if err != nil {
		t.Fatal(err)
	}
	if applied.Label != "recv" {
		t.Fatalf("label = %s, want recv", applied.Label)
	}
	if w.Proc("B").M.Var("got") != 1 {
		t.Fatal("B did not record receipt")
	}
	if w.Global("g.total") != 1 {
		t.Fatalf("global total = %d, want 1", w.Global("g.total"))
	}
	if !w.Quiescent() {
		t.Fatal("world should be quiescent")
	}
}

func TestLossyChannelOffersDrop(t *testing.T) {
	w := pingPongWorld(t, true)
	if err := w.Inject("B", types.Message{Kind: types.MsgPowerOn}); err != nil {
		t.Fatal(err)
	}
	steps := w.Steps(nil)
	var kinds []StepKind
	for _, s := range steps {
		kinds = append(kinds, s.Kind)
	}
	if len(steps) != 2 {
		t.Fatalf("steps = %v, want deliver+drop", kinds)
	}
	hasDeliver, hasDrop := false, false
	for _, s := range steps {
		switch s.Kind {
		case StepDeliver:
			hasDeliver = true
		case StepDrop:
			hasDrop = true
		}
	}
	if !hasDeliver || !hasDrop {
		t.Fatalf("steps = %v, want deliver and drop", kinds)
	}
	// Dropping leaves machine state unchanged.
	for _, s := range steps {
		if s.Kind == StepDrop {
			if _, err := w.Apply(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Proc("B").M.State() != "WAIT" || w.QueueLen("B") != 0 {
		t.Fatal("drop should consume message without transition")
	}
}

func TestDiscardUnhandled(t *testing.T) {
	w := pingPongWorld(t, false)
	// B has no transition on MsgPowerOff.
	if err := w.Inject("B", types.Message{Kind: types.MsgPowerOff}); err != nil {
		t.Fatal(err)
	}
	steps := w.Steps(nil)
	if len(steps) != 1 || steps[0].Kind != StepDiscard {
		t.Fatalf("steps = %v, want one discard", steps)
	}
	if _, err := w.Apply(steps[0]); err != nil {
		t.Fatal(err)
	}
	if w.QueueLen("B") != 0 {
		t.Fatal("discard should drain the message")
	}
}

func TestReorderPositions(t *testing.T) {
	w, err := New(Config{Procs: []ProcConfig{
		{Name: "B", Spec: pongSpec(), Reorder: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	w.Inject("B", types.Message{Kind: types.MsgPowerOff}) // unhandled
	w.Inject("B", types.Message{Kind: types.MsgPowerOn})  // handled
	steps := w.Steps(nil)
	// Position 0: discard (PowerOff). Position 1: deliver (PowerOn).
	var sawPos1Deliver bool
	for _, s := range steps {
		if s.Kind == StepDeliver && s.Pos == 1 {
			sawPos1Deliver = true
		}
	}
	if !sawPos1Deliver {
		t.Fatalf("reorder channel should offer delivery at position 1: %v", steps)
	}
}

func TestHeadOnlyWithoutReorder(t *testing.T) {
	w := pingPongWorld(t, false)
	w.Inject("B", types.Message{Kind: types.MsgPowerOff})
	w.Inject("B", types.Message{Kind: types.MsgPowerOn})
	for _, s := range w.Steps(nil) {
		if s.Pos != 0 {
			t.Fatalf("FIFO channel offered non-head position: %v", s)
		}
	}
}

func TestCapacityOverflowDrops(t *testing.T) {
	w, err := New(Config{Procs: []ProcConfig{
		{Name: "A", Spec: pingSpec("C")},
		{Name: "C", Spec: pongSpec(), Cap: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill C's inbox to capacity, then have A send: the send must
	// be dropped and the overflow noted on the applied step.
	w.Inject("C", types.Message{Kind: types.MsgPowerOff})
	steps := w.Steps([]EnvEvent{{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}}})
	var envStep *Step
	for i := range steps {
		if steps[i].Kind == StepEnv {
			envStep = &steps[i]
		}
	}
	if envStep == nil {
		t.Fatalf("no env step in %v", steps)
	}
	applied, err := w.Apply(*envStep)
	if err != nil {
		t.Fatal(err)
	}
	if w.QueueLen("C") != 1 {
		t.Fatalf("C queue = %d, want 1 (overflow dropped)", w.QueueLen("C"))
	}
	if len(applied.Notes) == 0 {
		t.Fatal("overflow drop should leave a note on the step")
	}
}

func TestOutputFanout(t *testing.T) {
	outSpec := &fsm.Spec{
		Name: "out",
		Init: "A",
		Transitions: []fsm.Transition{
			{Name: "emit", From: "A", On: types.MsgUserDataOn, To: "B",
				Action: func(c fsm.Ctx, e fsm.Event) {
					c.Output(types.Message{Kind: types.MsgPowerOn})
				}},
		},
	}
	w, err := New(Config{Procs: []ProcConfig{
		{Name: "L", Spec: outSpec, OutputTo: []string{"P", "Q"}},
		{Name: "P", Spec: pongSpec()},
		{Name: "Q", Spec: pongSpec()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	steps := w.Steps([]EnvEvent{{Proc: "L", Msg: types.Message{Kind: types.MsgUserDataOn}}})
	if len(steps) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	if _, err := w.Apply(steps[0]); err != nil {
		t.Fatal(err)
	}
	if w.QueueLen("P") != 1 || w.QueueLen("Q") != 1 {
		t.Fatalf("fanout queues P=%d Q=%d, want 1,1", w.QueueLen("P"), w.QueueLen("Q"))
	}
	msg := w.Chan("P").Queue[0]
	if msg.From != "L" {
		t.Fatalf("From = %q, want L", msg.From)
	}
}

func TestCloneIsolation(t *testing.T) {
	w := pingPongWorld(t, false)
	w.Inject("B", types.Message{Kind: types.MsgPowerOn})
	w.SetGlobal("g.total", 5)
	c := w.Clone()
	steps := c.Steps(nil)
	if _, err := c.Apply(steps[0]); err != nil {
		t.Fatal(err)
	}
	c.SetGlobal("g.total", 99)
	if w.QueueLen("B") != 1 {
		t.Fatal("clone drained original queue")
	}
	if w.Proc("B").M.State() != "WAIT" {
		t.Fatal("clone mutated original machine")
	}
	if w.Global("g.total") != 5 {
		t.Fatal("clone mutated original globals")
	}
}

func TestEncodeHashDistinguishStates(t *testing.T) {
	a := pingPongWorld(t, false)
	b := pingPongWorld(t, false)
	if !bytes.Equal(a.Encode(nil), b.Encode(nil)) {
		t.Fatal("fresh identical worlds encode differently")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("fresh identical worlds hash differently")
	}
	b.Inject("B", types.Message{Kind: types.MsgPowerOn})
	if bytes.Equal(a.Encode(nil), b.Encode(nil)) {
		t.Fatal("queued message not reflected in encoding")
	}
	a.Inject("B", types.Message{Kind: types.MsgPowerOn})
	if a.Hash() != b.Hash() {
		t.Fatal("equal worlds hash differently")
	}
	a.SetGlobal("g.total", 3)
	if a.Hash() == b.Hash() {
		t.Fatal("global change not reflected in hash")
	}
}

func TestApplyErrors(t *testing.T) {
	w := pingPongWorld(t, false)
	if _, err := w.Apply(Step{Kind: StepDeliver, Proc: "nope"}); err == nil {
		t.Fatal("unknown proc accepted")
	}
	if _, err := w.Apply(Step{Kind: StepDeliver, Proc: "B", Pos: 0}); err == nil {
		t.Fatal("empty queue deliver accepted")
	}
	if _, err := w.Apply(Step{Kind: StepDrop, Proc: "B", Pos: 0}); err == nil {
		t.Fatal("empty queue drop accepted")
	}
	if _, err := w.Apply(Step{Kind: StepKind(200), Proc: "B"}); err == nil {
		t.Fatal("bad kind accepted")
	}
	if err := w.Inject("nope", types.Message{Kind: types.MsgPowerOn}); err == nil {
		t.Fatal("inject to unknown proc accepted")
	}
}

// Property: Clone always produces a world with an identical hash, and
// applying the same step sequence to the original and a clone keeps
// them identical.
func TestQuickCloneEquivalence(t *testing.T) {
	f := func(choices []uint8) bool {
		w := pingPongWorldQ()
		env := []EnvEvent{
			{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}},
		}
		for _, choice := range choices {
			steps := w.Steps(env)
			if len(steps) == 0 {
				break
			}
			s := steps[int(choice)%len(steps)]
			c := w.Clone()
			if c.Hash() != w.Hash() {
				return false
			}
			if _, err := w.Apply(s); err != nil {
				return false
			}
			if _, err := c.Apply(s); err != nil {
				return false
			}
			if c.Hash() != w.Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func pingPongWorldQ() *World {
	w, err := New(Config{
		Procs: []ProcConfig{
			{Name: "A", Spec: pingSpec("B")},
			{Name: "B", Spec: pongSpec(), Lossy: true},
		},
		Globals: map[string]int{"g.total": 0},
	})
	if err != nil {
		panic(err)
	}
	return w
}

func TestStepStrings(t *testing.T) {
	cases := []Step{
		{Kind: StepDeliver, Proc: "B", Msg: types.Message{Kind: types.MsgPowerOn}, Label: "recv"},
		{Kind: StepDrop, Proc: "B", Msg: types.Message{Kind: types.MsgPowerOn}},
		{Kind: StepDiscard, Proc: "B", Msg: types.Message{Kind: types.MsgPowerOn}},
		{Kind: StepEnv, Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}, Label: "poke"},
	}
	for _, s := range cases {
		if s.String() == "" {
			t.Fatalf("empty String for %v", s.Kind)
		}
	}
	for _, k := range []StepKind{StepDeliver, StepDrop, StepDiscard, StepEnv, StepKind(99)} {
		if k.String() == "" {
			t.Fatal("empty StepKind string")
		}
	}
}
