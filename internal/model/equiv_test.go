package model

import (
	"bytes"
	"testing"
	"testing/quick"

	"cnetverifier/internal/types"
)

// The interned-slab representation has three load-bearing equivalences
// the checker depends on: CloneInto must reproduce the source exactly
// (the parallel engine recycles pooled worlds through it), Save/Restore
// must rewind every logical component (the sequential DFS backtracks in
// place instead of cloning), and applying a step in place must land on
// the same state as applying it to a clone (apply/undo and clone-based
// search explore the same graph). Each property drives a random step
// sequence through the ping/pong world and compares full Encode images,
// which cover machine states, vars, overflow vars, queues and globals.

var quickEnv = []EnvEvent{
	{Proc: "A", Msg: types.Message{Kind: types.MsgUserDataOn}},
}

// walk applies up to len(choices) randomly chosen steps to w.
func walk(w *World, choices []uint8) {
	for _, choice := range choices {
		steps := w.Steps(quickEnv)
		if len(steps) == 0 {
			return
		}
		if _, err := w.Apply(steps[int(choice)%len(steps)]); err != nil {
			panic(err)
		}
	}
}

// Property: CloneInto over a reused (dirty) destination produces a
// world whose encoding and hash match the source, and the pair then
// evolve identically under the same steps.
func TestQuickCloneIntoEquivalence(t *testing.T) {
	dst := &World{} // reused across iterations, like a pooled world
	f := func(prefix, suffix []uint8) bool {
		w := pingPongWorldQ()
		walk(w, prefix)
		w.CloneInto(dst)
		if w.Hash() != dst.Hash() {
			return false
		}
		if !bytes.Equal(w.Encode(nil), dst.Encode(nil)) {
			return false
		}
		walk(w, suffix)
		walk(dst, suffix)
		return bytes.Equal(w.Encode(nil), dst.Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Save → any number of applied steps → Restore is an exact
// round trip, and the snapshot stays valid for repeated restores.
func TestQuickSaveRestoreRoundTrip(t *testing.T) {
	var u Undo // reused, like the per-depth frames in the DFS
	f := func(prefix, body, body2 []uint8) bool {
		w := pingPongWorldQ()
		walk(w, prefix)
		before := w.Encode(nil)
		w.Save(&u)
		walk(w, body)
		w.Restore(&u)
		if !bytes.Equal(before, w.Encode(nil)) {
			return false
		}
		// The same snapshot must back out a second divergence too.
		walk(w, body2)
		w.Restore(&u)
		return bytes.Equal(before, w.Encode(nil)) && w.Hash() == hashOf(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// hashOf recomputes the world hash from an encoding-equal world: two
// worlds with equal encodings must hash equally, so compare via a fresh
// replay rather than trusting Hash's internal memo.
func hashOf(enc []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range enc {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Property: applying a step in place (with ApplyUndo) reaches the same
// state as applying it to a clone, and Restore rewinds exactly.
func TestQuickApplyUndoVsClone(t *testing.T) {
	var u Undo
	f := func(prefix []uint8, choice uint8) bool {
		w := pingPongWorldQ()
		walk(w, prefix)
		steps := w.Steps(quickEnv)
		if len(steps) == 0 {
			return true
		}
		s := steps[int(choice)%len(steps)]
		before := w.Encode(nil)

		c := w.Clone()
		if _, err := c.Apply(s); err != nil {
			return false
		}
		if _, err := w.ApplyUndo(s, &u); err != nil {
			return false
		}
		if !bytes.Equal(w.Encode(nil), c.Encode(nil)) {
			return false
		}
		w.Restore(&u)
		return bytes.Equal(before, w.Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Encode is pure — two identically constructed and identically
// driven worlds encode byte-equal, and re-encoding does not disturb the
// world (the per-machine memo is an invisible cache).
func TestQuickEncodePurity(t *testing.T) {
	f := func(choices []uint8) bool {
		w1 := pingPongWorldQ()
		w2 := pingPongWorldQ()
		walk(w1, choices)
		walk(w2, choices)
		e1 := w1.Encode(nil)
		if !bytes.Equal(e1, w2.Encode(nil)) {
			return false
		}
		// Re-encoding and hashing must not change the image.
		_ = w1.Hash()
		return bytes.Equal(e1, w1.Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating a clone (vars, globals, queue contents) never
// leaks into the source — the slab representation shares no mutable
// backing between worlds.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(prefix []uint8, gv int32) bool {
		w := pingPongWorldQ()
		walk(w, prefix)
		before := w.Encode(nil)
		c := w.Clone()
		c.SetGlobal("g.total", int(gv))
		c.SetGlobal("g.fresh", 7) // overflow growth on the clone only
		c.Proc("B").M.SetVar("got", 99)
		c.Proc("B").M.SetVar("novel", 1)
		if err := c.Inject("A", types.Message{Kind: types.MsgPowerOn}); err != nil {
			return false
		}
		return bytes.Equal(before, w.Encode(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
