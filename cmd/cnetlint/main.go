// Command cnetlint runs the internal/lint static analyzer over the
// registered protocol specs and the standard scenario worlds, and
// prints the findings as text, JSON or annotated DOT.
//
// Usage:
//
//	cnetlint [-spec all|<name>|none] [-world all|<name>|none] [-fixed]
//	         [-json] [-dot <spec>] [-fail-on info|warn|error]
//	         [-suppress RULE1,RULE2] [-rules]
//	         [-effects <world>] [-graph <world>]
//
// -effects prints the static per-edge effect summaries and independence
// clusters of one standard world (internal/lint/effects); -graph prints
// the same analysis's cross-protocol interaction graph as Graphviz DOT.
// Both exit immediately, like -dot.
//
// Exit status is 1 when any finding reaches the -fail-on severity
// (default error), 2 on usage errors, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cnetverifier/internal/core"
	"cnetverifier/internal/lint"
	"cnetverifier/internal/lint/effects"
)

func main() {
	var (
		specName  = flag.String("spec", "all", "spec to lint: all, none, or a registry name (see -rules for IDs, cnetlint -spec none -world none to list)")
		worldName = flag.String("world", "all", "world to lint: all, none, or one of "+strings.Join(core.WorldNames(), ", "))
		fixed     = flag.Bool("fixed", false, "lint the §8-fixed variants of the standard worlds")
		jsonOut   = flag.Bool("json", false, "emit findings as JSON")
		dotSpec   = flag.String("dot", "", "print the lint-annotated DOT graph for one spec and exit")
		failOn    = flag.String("fail-on", "error", "exit nonzero when a finding reaches this severity: info, warn, error")
		suppress  = flag.String("suppress", "", "comma-separated rule IDs to disable everywhere")
		rules     = flag.Bool("rules", false, "print the rule catalog and exit")
		effectsW  = flag.String("effects", "", "print per-edge effect summaries and independence clusters for one world and exit")
		graphW    = flag.String("graph", "", "print the cross-protocol interaction graph of one world as Graphviz DOT and exit")
	)
	flag.Parse()

	if *rules {
		printRules(*jsonOut)
		return
	}

	minSev, err := lint.ParseSeverity(*failOn)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetlint:", err)
		os.Exit(2)
	}

	opts := lint.Options{}
	if *suppress != "" {
		opts.Suppress = map[string][]string{"*": strings.Split(*suppress, ",")}
	}

	if *effectsW != "" || *graphW != "" {
		name := *effectsW
		if name == "" {
			name = *graphW
		}
		sc, ok := core.StandardWorlds(*fixed)[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "cnetlint: unknown world %q (known: %s)\n", name, strings.Join(core.WorldNames(), ", "))
			os.Exit(2)
		}
		we := effects.Analyze(sc.World)
		if *effectsW != "" {
			fmt.Print(we.Text())
		} else {
			fmt.Print(we.GraphDOT())
		}
		return
	}

	if *dotSpec != "" {
		s, ok := core.AllSpecs()[*dotSpec]
		if !ok {
			fmt.Fprintf(os.Stderr, "cnetlint: unknown spec %q (known: %s)\n", *dotSpec, strings.Join(core.SpecNames(), ", "))
			os.Exit(2)
		}
		fmt.Print(lint.DOT(s, lint.Spec(s, opts)))
		return
	}

	type target struct {
		Target   string         `json:"target"`
		Findings []lint.Finding `json:"findings"`
	}
	var targets []target
	total := &lint.Report{}

	specs := core.AllSpecs()
	for _, name := range selectNames(*specName, core.SpecNames(), "spec") {
		rep := lint.Spec(specs[name], opts)
		targets = append(targets, target{"spec " + name, rep.Findings})
		total.Merge(rep)
	}

	worlds := core.StandardWorlds(*fixed)
	for _, name := range selectNames(*worldName, core.WorldNames(), "world") {
		sc := worlds[name]
		rep := core.LintWorld(sc, worldOptions(opts, sc.Options.LintSuppress))
		targets = append(targets, target{"world " + name, rep.Findings})
		total.Merge(rep)
	}

	if *jsonOut {
		for i := range targets {
			if targets[i].Findings == nil {
				targets[i].Findings = []lint.Finding{}
			}
		}
		out, err := json.MarshalIndent(targets, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetlint:", err)
			os.Exit(2)
		}
		fmt.Println(string(out))
	} else {
		for _, tg := range targets {
			if len(tg.Findings) == 0 {
				continue
			}
			fmt.Printf("== %s ==\n", tg.Target)
			for _, f := range tg.Findings {
				fmt.Println(f.String())
			}
		}
		fmt.Printf("linted %d targets: %d findings (%d errors, %d warnings, %d info)\n",
			len(targets), len(total.Findings),
			len(total.ByRuleSeverity(lint.Error)),
			len(total.ByRuleSeverity(lint.Warn)),
			len(total.ByRuleSeverity(lint.Info)))
	}

	if !total.Clean(minSev) {
		os.Exit(1)
	}
}

// selectNames resolves a -spec/-world flag value against the registry:
// "all" means every name, "none" means none, anything else one name.
func selectNames(value string, known []string, kind string) []string {
	switch strings.ToLower(value) {
	case "all":
		return known
	case "none", "":
		return nil
	}
	for _, n := range known {
		if n == value {
			return []string{n}
		}
	}
	fmt.Fprintf(os.Stderr, "cnetlint: unknown %s %q (known: %s)\n", kind, value, strings.Join(known, ", "))
	os.Exit(2)
	return nil
}

// worldOptions layers a world's own per-process suppressions (the same
// ones check.Run honors) on top of the command-line options.
func worldOptions(o lint.Options, extra map[string][]string) lint.Options {
	if len(extra) == 0 {
		return o
	}
	merged := make(map[string][]string, len(o.Suppress)+len(extra))
	for k, v := range o.Suppress {
		merged[k] = append(merged[k], v...)
	}
	for k, v := range extra {
		merged[k] = append(merged[k], v...)
	}
	o.Suppress = merged
	return o
}

func printRules(asJSON bool) {
	rules := lint.Rules()
	if asJSON {
		out, _ := json.MarshalIndent(rules, "", "  ")
		fmt.Println(string(out))
		return
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	for _, r := range rules {
		fmt.Printf("%-8s %-5s %-5s %s\n", r.ID, r.Severity, r.Scope, r.Summary)
	}
}
