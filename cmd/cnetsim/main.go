// Command cnetsim runs the §9 control-plane prototype over real
// sockets: a core network (TCP), a base station relaying between UDP
// (the emulated unreliable RRC air interface) and TCP, and a
// programmable device. Each role runs as its own process, mirroring
// the paper's three-machine prototype; -role all wires all three in
// one process for a quick demonstration.
//
// Usage:
//
//	cnetsim -role core  [-listen 127.0.0.1:7801] [-shim]
//	cnetsim -role bs    [-listen 127.0.0.1:7802] [-core 127.0.0.1:7801] [-drop 0.05] [-seed 1]
//	cnetsim -role device [-bs 127.0.0.1:7802] [-shim] [-taus 3]
//	cnetsim -role all   [-drop 0.05] [-shim] [-taus 3]
//
// With -sweep it instead runs a loss-sweep validation campaign on the
// in-process emulator (no sockets): each screened S1–S6 counterexample
// is replayed across a grid of air-interface loss rates and seeds, with
// the NAS retransmission layer keeping lossy runs terminating.
//
//	cnetsim -sweep [-loss 0:0.5:0.05] [-seeds 32] [-workers N]
//	        [-findings S1,S4] [-profile OP-II] [-fixes reliable,parallel]
//	        [-noreliab] [-format table|json|csv] [-seed 1]
//
// With -campaign it runs the population-scale control-plane load
// engine: 10^5–10^6 lightweight UE sessions drawing per-procedure
// inter-arrivals, reporting core-element signaling load and the S1–S6
// occurrence table at population scale. The report is byte-identical
// at any -workers value.
//
//	cnetsim -campaign [-ues 100000] [-frac4g 0.6] [-horizon 1h]
//	        [-workers N] [-seed 1] [-shard 4096]
//	        [-attach exp:806400] [-detach exp:86400] [-service lognormal:5.897,1]
//	        [-handover exp:1800] [-call exp:72000]
//	        [-format table|json|csv] [-series FILE]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cnetverifier/internal/campaign"
	"cnetverifier/internal/core"
	"cnetverifier/internal/emu"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/validate"
)

func main() {
	var (
		role   = flag.String("role", "all", "core, bs, device, or all")
		listen = flag.String("listen", "", "listen address (core: TCP, bs: UDP)")
		coreAt = flag.String("core", "127.0.0.1:7801", "core TCP address (bs role)")
		bsAt   = flag.String("bs", "127.0.0.1:7802", "BS UDP address (device role)")
		drop   = flag.Float64("drop", 0, "air-interface drop rate (bs role)")
		seed   = flag.Int64("seed", 1, "dropper seed (socket roles) / base trial seed (-sweep)")
		shim   = flag.Bool("shim", false, "enable the §8 reliable-transfer shim")
		taus   = flag.Int("taus", 3, "tracking-area updates after attach (device role)")

		sweep    = flag.Bool("sweep", false, "run a loss-sweep validation campaign instead of a socket role")
		loss     = flag.String("loss", "0:0.5:0.1", "loss grid: start:end:step or comma list (sweep)")
		seeds    = flag.Int("seeds", 8, "trials per (finding, loss) cell (sweep)")
		workers  = flag.Int("workers", runtime.NumCPU(), "concurrent emulator runs (sweep)")
		findings = flag.String("findings", "", "comma-separated subset of S1..S6; empty = all (sweep)")
		profile  = flag.String("profile", "OP-II", "operator profile: OP-I or OP-II (sweep)")
		fixesF   = flag.String("fixes", "", "§8 fixes: comma list of reliable,parallel,decouple,crosssys or 'all' (sweep)")
		noReliab = flag.Bool("noreliab", false, "disable the NAS retransmission layer (sweep)")
		format   = flag.String("format", "table", "sweep/campaign output: table, json, or csv")

		campaignF = flag.Bool("campaign", false, "run a population-scale load campaign instead of a socket role")
		ues       = flag.Int("ues", 100000, "population size (campaign)")
		frac4G    = flag.Float64("frac4g", 12.0/20, "fraction of 4G-capable UEs (campaign)")
		horizon   = flag.Duration("horizon", time.Hour, "simulated span (campaign)")
		shard     = flag.Int("shard", 4096, "UE shard size; part of the report identity (campaign)")
		attachD   = flag.String("attach", "", "attach inter-arrival dist, e.g. exp:806400 (campaign)")
		detachD   = flag.String("detach", "", "detach inter-arrival dist (campaign)")
		serviceD  = flag.String("service", "", "service-request inter-arrival dist (campaign)")
		handoverD = flag.String("handover", "", "mobility-update inter-arrival dist (campaign)")
		callD     = flag.String("call", "", "voice-call inter-arrival dist (campaign)")
		seriesF   = flag.String("series", "", "write the per-bucket element-load series CSV to FILE (campaign)")
	)
	flag.Parse()

	if *sweep {
		runSweep(*loss, *seeds, *workers, *findings, *profile, *fixesF, *noReliab, *format, *seed)
		return
	}
	if *campaignF {
		runCampaign(*ues, *frac4G, *horizon, *workers, *seed, *shard,
			[5]string{*attachD, *detachD, *serviceD, *handoverD, *callD}, *format, *seriesF)
		return
	}

	switch *role {
	case "core":
		addr := orDefault(*listen, "127.0.0.1:7801")
		core, err := emu.NewCore(addr, *shim)
		fatal(err)
		defer core.Close()
		fmt.Println("core listening on", core.Addr())
		waitInterrupt()

	case "bs":
		addr := orDefault(*listen, "127.0.0.1:7802")
		bs, err := emu.NewBS(addr, *coreAt, *drop, *seed)
		fatal(err)
		defer bs.Close()
		fmt.Printf("bs relaying %s (udp, drop %.1f%%) <-> %s (tcp)\n", bs.Addr(), *drop*100, *coreAt)
		waitInterrupt()
		fmt.Printf("relayed %d frames, dropped %d\n", bs.Relayed(), bs.Dropped())

	case "device":
		runDevice(*bsAt, *shim, *taus)

	case "all":
		core, err := emu.NewCore("127.0.0.1:0", *shim)
		fatal(err)
		defer core.Close()
		bs, err := emu.NewBS("127.0.0.1:0", core.Addr(), *drop, *seed)
		fatal(err)
		defer bs.Close()
		fmt.Printf("core %s, bs %s (drop %.1f%%, shim %v)\n", core.Addr(), bs.Addr(), *drop*100, *shim)
		runDevice(bs.Addr(), *shim, *taus)
		fmt.Printf("bs relayed %d frames, dropped %d\n", bs.Relayed(), bs.Dropped())

	default:
		fmt.Fprintf(os.Stderr, "cnetsim: unknown role %q\n", *role)
		os.Exit(1)
	}
}

func runDevice(bsAddr string, shim bool, taus int) {
	dev, err := emu.NewDevice(bsAddr, shim)
	fatal(err)
	defer dev.Close()

	fmt.Println("device: powering on (4G attach)...")
	start := time.Now()
	dev.PowerOn()
	if !dev.WaitRegistered(10*time.Second, 200*time.Millisecond) {
		fmt.Println("device: attach FAILED (out of service)")
		os.Exit(2)
	}
	fmt.Printf("device: registered in %v\n", time.Since(start).Round(time.Millisecond))

	for i := 1; i <= taus; i++ {
		dev.TAU()
		time.Sleep(300 * time.Millisecond)
		if dev.Detached() {
			fmt.Printf("device: DETACHED after TAU %d (S2 reproduced)\n", i)
			os.Exit(2)
		}
		fmt.Printf("device: TAU %d ok, still registered\n", i)
	}
	fmt.Println("device: done")
}

// runSweep parses the sweep flags and runs the campaign.
func runSweep(lossSpec string, seeds, workers int, findingsSpec, profileName, fixesSpec string, noReliab bool, format string, seed int64) {
	rates, err := parseLossGrid(lossSpec)
	fatal(err)
	ids, err := parseFindings(findingsSpec)
	fatal(err)
	prof, err := parseProfile(profileName)
	fatal(err)
	fixes, err := parseFixes(fixesSpec)
	fatal(err)

	res, err := validate.Sweep(validate.SweepConfig{
		Findings:      ids,
		LossRates:     rates,
		Seeds:         seeds,
		Workers:       workers,
		Profile:       prof,
		Fixes:         fixes,
		NoReliability: noReliab,
		Seed:          seed,
	})
	fatal(err)

	switch format {
	case "table":
		fmt.Print(res.Table())
	case "json":
		b, err := res.JSON()
		fatal(err)
		fmt.Println(string(b))
	case "csv":
		fmt.Print(res.CSV())
	default:
		fatal(fmt.Errorf("unknown -format %q (want table, json, or csv)", format))
	}
}

// runCampaign parses the campaign flags and runs the load engine.
func runCampaign(ues int, frac4G float64, horizon time.Duration, workers int, seed int64, shard int, dists [5]string, format, seriesFile string) {
	cfg := campaign.Config{
		UEs:       ues,
		Frac4G:    frac4G,
		Horizon:   horizon,
		Workers:   workers,
		Seed:      seed,
		ShardSize: shard,
		Arrivals:  campaign.DefaultArrivals(),
	}
	for i, dst := range []*campaign.Dist{
		&cfg.Arrivals.Attach, &cfg.Arrivals.Detach, &cfg.Arrivals.Service,
		&cfg.Arrivals.Handover, &cfg.Arrivals.Call,
	} {
		if dists[i] == "" {
			continue
		}
		d, err := campaign.ParseDist(dists[i])
		fatal(err)
		*dst = d
	}
	rep, err := campaign.Run(cfg)
	fatal(err)

	switch format {
	case "table":
		fmt.Print(rep.Table())
	case "json":
		fmt.Print(rep.JSON())
	case "csv":
		fmt.Print(rep.CSV())
	default:
		fatal(fmt.Errorf("unknown -format %q (want table, json, or csv)", format))
	}
	if seriesFile != "" {
		f, err := os.Create(seriesFile)
		fatal(err)
		err = rep.WriteSeriesCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		fatal(err)
	}
}

// parseLossGrid accepts "start:end:step" or a comma-separated list.
func parseLossGrid(spec string) ([]float64, error) {
	if spec == "" {
		return nil, nil
	}
	bad := func() error { return fmt.Errorf("bad -loss %q (want start:end:step or a comma list in [0,1))", spec) }
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, bad()
		}
		var v [3]float64
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, bad()
			}
			v[i] = f
		}
		start, end, step := v[0], v[1], v[2]
		if step <= 0 || start < 0 || end < start || end >= 1 {
			return nil, bad()
		}
		var out []float64
		// Round to micro precision so 0.1+0.1+0.1 style accumulation
		// never produces a stray 0.30000000000000004 grid point.
		for x := start; x <= end+step/1e6; x += step {
			out = append(out, math.Round(x*1e6)/1e6)
		}
		return out, nil
	}
	var out []float64
	for _, p := range strings.Split(spec, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f < 0 || f >= 1 {
			return nil, bad()
		}
		out = append(out, math.Round(f*1e6)/1e6)
	}
	return out, nil
}

func parseFindings(spec string) ([]core.FindingID, error) {
	if spec == "" {
		return nil, nil
	}
	known := map[string]core.FindingID{
		"S1": core.S1, "S2": core.S2, "S3": core.S3,
		"S4": core.S4, "S5": core.S5, "S6": core.S6,
	}
	var out []core.FindingID
	for _, p := range strings.Split(spec, ",") {
		id, ok := known[strings.ToUpper(strings.TrimSpace(p))]
		if !ok {
			return nil, fmt.Errorf("unknown finding %q (want S1..S6)", p)
		}
		out = append(out, id)
	}
	return out, nil
}

func parseProfile(name string) (*netemu.OperatorProfile, error) {
	for _, p := range netemu.Operators() {
		if strings.EqualFold(p.Name, name) {
			p := p
			return &p, nil
		}
	}
	return nil, fmt.Errorf("unknown -profile %q (want OP-I or OP-II)", name)
}

func parseFixes(spec string) (netemu.FixSet, error) {
	var fs netemu.FixSet
	if spec == "" {
		return fs, nil
	}
	if strings.EqualFold(spec, "all") {
		return netemu.AllFixes(), nil
	}
	for _, p := range strings.Split(spec, ",") {
		switch strings.ToLower(strings.TrimSpace(p)) {
		case "reliable":
			fs.ReliableSignaling = true
		case "parallel":
			fs.ParallelUpdate = true
		case "decouple":
			fs.DomainDecoupling = true
		case "crosssys":
			fs.CrossSystem = true
		default:
			return fs, fmt.Errorf("unknown fix %q (want reliable, parallel, decouple, crosssys, or all)", p)
		}
	}
	return fs, nil
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetsim:", err)
		os.Exit(1)
	}
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
