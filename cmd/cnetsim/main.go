// Command cnetsim runs the §9 control-plane prototype over real
// sockets: a core network (TCP), a base station relaying between UDP
// (the emulated unreliable RRC air interface) and TCP, and a
// programmable device. Each role runs as its own process, mirroring
// the paper's three-machine prototype; -role all wires all three in
// one process for a quick demonstration.
//
// Usage:
//
//	cnetsim -role core  [-listen 127.0.0.1:7801] [-shim]
//	cnetsim -role bs    [-listen 127.0.0.1:7802] [-core 127.0.0.1:7801] [-drop 0.05] [-seed 1]
//	cnetsim -role device [-bs 127.0.0.1:7802] [-shim] [-taus 3]
//	cnetsim -role all   [-drop 0.05] [-shim] [-taus 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cnetverifier/internal/emu"
)

func main() {
	var (
		role   = flag.String("role", "all", "core, bs, device, or all")
		listen = flag.String("listen", "", "listen address (core: TCP, bs: UDP)")
		coreAt = flag.String("core", "127.0.0.1:7801", "core TCP address (bs role)")
		bsAt   = flag.String("bs", "127.0.0.1:7802", "BS UDP address (device role)")
		drop   = flag.Float64("drop", 0, "air-interface drop rate (bs role)")
		seed   = flag.Int64("seed", 1, "dropper seed")
		shim   = flag.Bool("shim", false, "enable the §8 reliable-transfer shim")
		taus   = flag.Int("taus", 3, "tracking-area updates after attach (device role)")
	)
	flag.Parse()

	switch *role {
	case "core":
		addr := orDefault(*listen, "127.0.0.1:7801")
		core, err := emu.NewCore(addr, *shim)
		fatal(err)
		defer core.Close()
		fmt.Println("core listening on", core.Addr())
		waitInterrupt()

	case "bs":
		addr := orDefault(*listen, "127.0.0.1:7802")
		bs, err := emu.NewBS(addr, *coreAt, *drop, *seed)
		fatal(err)
		defer bs.Close()
		fmt.Printf("bs relaying %s (udp, drop %.1f%%) <-> %s (tcp)\n", bs.Addr(), *drop*100, *coreAt)
		waitInterrupt()
		fmt.Printf("relayed %d frames, dropped %d\n", bs.Relayed(), bs.Dropped())

	case "device":
		runDevice(*bsAt, *shim, *taus)

	case "all":
		core, err := emu.NewCore("127.0.0.1:0", *shim)
		fatal(err)
		defer core.Close()
		bs, err := emu.NewBS("127.0.0.1:0", core.Addr(), *drop, *seed)
		fatal(err)
		defer bs.Close()
		fmt.Printf("core %s, bs %s (drop %.1f%%, shim %v)\n", core.Addr(), bs.Addr(), *drop*100, *shim)
		runDevice(bs.Addr(), *shim, *taus)
		fmt.Printf("bs relayed %d frames, dropped %d\n", bs.Relayed(), bs.Dropped())

	default:
		fmt.Fprintf(os.Stderr, "cnetsim: unknown role %q\n", *role)
		os.Exit(1)
	}
}

func runDevice(bsAddr string, shim bool, taus int) {
	dev, err := emu.NewDevice(bsAddr, shim)
	fatal(err)
	defer dev.Close()

	fmt.Println("device: powering on (4G attach)...")
	start := time.Now()
	dev.PowerOn()
	if !dev.WaitRegistered(10*time.Second, 200*time.Millisecond) {
		fmt.Println("device: attach FAILED (out of service)")
		os.Exit(2)
	}
	fmt.Printf("device: registered in %v\n", time.Since(start).Round(time.Millisecond))

	for i := 1; i <= taus; i++ {
		dev.TAU()
		time.Sleep(300 * time.Millisecond)
		if dev.Detached() {
			fmt.Printf("device: DETACHED after TAU %d (S2 reproduced)\n", i)
			os.Exit(2)
		}
		fmt.Printf("device: TAU %d ok, still registered\n", i)
	}
	fmt.Println("device: done")
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetsim:", err)
		os.Exit(1)
	}
}

func waitInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}
