package main

import (
	"reflect"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/netemu"
)

func TestParseLossGrid(t *testing.T) {
	cases := []struct {
		spec string
		want []float64
		err  bool
	}{
		{"0:0.5:0.1", []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}, false},
		{"0:0.3:0.15", []float64{0, 0.15, 0.3}, false},
		{"0.05:0.05:0.05", []float64{0.05}, false},
		{"0,0.1,0.3", []float64{0, 0.1, 0.3}, false},
		{"0.25", []float64{0.25}, false},
		{"", nil, false},
		{"0:0.5", nil, true},       // not three fields
		{"0:0.5:0", nil, true},     // zero step
		{"0.5:0.1:0.1", nil, true}, // end before start
		{"0:1:0.5", nil, true},     // 100% loss can never terminate a handshake
		{"a,b", nil, true},
		{"-0.1", nil, true},
	}
	for _, tc := range cases {
		got, err := parseLossGrid(tc.spec)
		if tc.err {
			if err == nil {
				t.Errorf("parseLossGrid(%q) accepted, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseLossGrid(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseLossGrid(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}
}

func TestParseFindings(t *testing.T) {
	got, err := parseFindings("s1, S4 ,s6")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.FindingID{core.S1, core.S4, core.S6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if empty, err := parseFindings(""); err != nil || empty != nil {
		t.Fatalf("empty spec: %v, %v", empty, err)
	}
	if _, err := parseFindings("S7"); err == nil {
		t.Fatal("S7 accepted")
	}
}

func TestParseProfile(t *testing.T) {
	for _, name := range []string{"OP-I", "op-ii"} {
		p, err := parseProfile(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.NASRetrans.RTO == 0 {
			t.Fatalf("%q: profile missing NAS timers", name)
		}
	}
	if _, err := parseProfile("OP-III"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestParseFixes(t *testing.T) {
	fs, err := parseFixes("reliable,decouple")
	if err != nil {
		t.Fatal(err)
	}
	if !fs.ReliableSignaling || !fs.DomainDecoupling || fs.ParallelUpdate || fs.CrossSystem {
		t.Fatalf("fixes = %+v", fs)
	}
	all, err := parseFixes("all")
	if err != nil || all != netemu.AllFixes() {
		t.Fatalf("all = %+v, %v", all, err)
	}
	if _, err := parseFixes("magic"); err == nil {
		t.Fatal("unknown fix accepted")
	}
}
