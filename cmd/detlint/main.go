// Command detlint runs CNetVerifier's determinism analyzers
// (internal/analyzers) over Go packages. It speaks two dialects:
//
// As a vet tool, hand-implementing the cmd/go unitchecker protocol on
// the standard library alone (the build environment has no
// golang.org/x/tools):
//
//	go vet -vettool=$(command -v detlint) ./internal/check/...
//
// The go command first invokes `detlint -V=full` for a build ID, then
// once per package with a JSON config file argument (*.cfg) naming the
// sources, the import map and the export-data files of every
// dependency; detlint typechecks the unit against that export data,
// runs the analyzers, writes the (empty) facts file the protocol
// requires, prints findings to stderr and exits 2 when there are any.
//
// Standalone (direct mode), for environments where the protocol is
// unavailable:
//
//	detlint ./internal/check ./internal/core ./internal/fuzz
//
// Each argument is a package directory; sources are typechecked
// best-effort (missing import data degrades the type-driven checks to
// their syntactic fallbacks, see internal/analyzers). Exit status 2
// when findings were reported, 1 on analysis failure, 0 otherwise.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cnetverifier/internal/analyzers"
)

func main() {
	// -V=full is the go command's tool-identification handshake; it
	// must print "<name> version ... buildID=<hex>" and exit 0 before
	// any real work happens.
	flag.Var(versionFlag{}, "V", "print version and exit (go vet protocol)")
	printFlags := flag.Bool("flags", false, "print the tool's flag definitions as JSON and exit (go vet protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [package-dir...]   (or via go vet -vettool)\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *printFlags {
		// The go command interrogates the tool for pass-through flags;
		// this tool defines none beyond the protocol's own.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitcheck(args[0])
		return
	}
	direct(args)
}

// versionFlag implements the -V=full handshake. The go command caches
// vet results keyed by the tool's build ID, so the ID must change
// whenever the binary does: hash the executable itself.
type versionFlag struct{}

func (versionFlag) String() string   { return "" }
func (versionFlag) IsBoolFlag() bool { return false }
func (versionFlag) Get() any         { return nil }
func (versionFlag) Set(s string) error {
	if s != "full" {
		return fmt.Errorf("detlint: unsupported -V value %q", s)
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(exe), h.Sum(nil)[:12])
	os.Exit(0)
	return nil
}

// vetConfig is the JSON the go command writes for each unit. The field
// set mirrors cmd/go/internal/work's vetConfig (only the fields this
// tool consumes are decoded; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one compilation unit under the go vet protocol.
func unitcheck(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("detlint: parsing %s: %v", cfgPath, err))
	}

	// The protocol requires the facts file regardless of findings (the
	// go command stats it); this tool defines no facts, so write an
	// empty one up front.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		// A dependency being vetted only for facts; nothing to do.
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				os.Exit(0)
			}
			fatal(err)
		}
		files = append(files, f)
	}

	// Resolve imports through the export data the go command compiled
	// for this unit: ImportMap canonicalizes the spelling, PackageFile
	// locates the .a/.x file, and the gc importer reads it.
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})

	info := newInfo()
	tconf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, "amd64"),
		GoVersion: strings.TrimPrefix(cfg.GoVersion, "go"),
	}
	if tconf.GoVersion != "" && !strings.HasPrefix(tconf.GoVersion, "go") {
		tconf.GoVersion = "go" + tconf.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			os.Exit(0)
		}
		fatal(fmt.Errorf("detlint: typechecking %s: %v", cfg.ImportPath, err))
	}

	os.Exit(runAnalyzers(fset, files, pkg, info))
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// direct analyzes package directories without the go command: sources
// are typechecked best-effort against default importer lookups, and
// analyzers degrade to syntactic checks where info is missing.
func direct(dirs []string) {
	if len(dirs) == 0 {
		flag.Usage()
		os.Exit(1)
	}
	exit := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, 0)
		if err != nil {
			fatal(err)
		}
		for _, p := range pkgs {
			var files []*ast.File
			for _, name := range sortedFileNames(p.Files) {
				files = append(files, p.Files[name])
			}
			info := newInfo()
			tconf := types.Config{
				Importer: importer.Default(),
				// Best-effort: imports of this module's own packages
				// have no installed export data, so collect errors and
				// keep whatever info resolves.
				Error: func(error) {},
			}
			pkg, _ := tconf.Check(dir, fset, files, info)
			if code := runAnalyzers(fset, files, pkg, info); code > exit {
				exit = code
			}
		}
	}
	os.Exit(exit)
}

func sortedFileNames(m map[string]*ast.File) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	// Parse order must be deterministic for stable positions-in-report
	// ordering (this tool lints for exactly this mistake).
	sort.Strings(names)
	return names
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// runAnalyzers executes every registered analyzer over one package and
// prints diagnostics in the canonical file:line:col form. Returns the
// process exit code contribution: 2 when findings were reported.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) int {
	found := 0
	for _, a := range analyzers.All() {
		pass := &analyzers.Pass{
			Fset: fset, Files: files, Pkg: pkg, TypesInfo: info,
			Report: func(d analyzers.Diagnostic) {
				found++
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, a.Name)
			},
		}
		if err := a.Run(pass); err != nil {
			fatal(fmt.Errorf("detlint: %s: %v", a.Name, err))
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
