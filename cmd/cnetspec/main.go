// Command cnetspec inspects the protocol state machines of Table 2:
// it lists them, renders any of them as a Graphviz digraph or a
// markdown transition table, and reports structural diagnostics
// (unreachable states, dead ends).
//
// Usage:
//
//	cnetspec -list
//	cnetspec -spec emm-ue [-fixed] -format dot|md|check
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cnetverifier/internal/fsm"
	"cnetverifier/internal/protocols/cm"
	"cnetverifier/internal/protocols/emm"
	"cnetverifier/internal/protocols/esm"
	"cnetverifier/internal/protocols/gmm"
	"cnetverifier/internal/protocols/mm"
	"cnetverifier/internal/protocols/rrc3g"
	"cnetverifier/internal/protocols/rrc4g"
	"cnetverifier/internal/protocols/sm"
)

func specs(fixed bool) map[string]*fsm.Spec {
	return map[string]*fsm.Spec{
		"emm-ue":   emm.DeviceSpec(emm.DeviceOptions{FixReactivateBearer: fixed}),
		"emm-mme":  emm.MMESpec(emm.MMEOptions{FixReactivateBearer: fixed, FixLUFailureRecovery: fixed, PropagateLUFailure: !fixed}),
		"esm-ue":   esm.DeviceSpec(esm.DeviceOptions{}),
		"esm-mme":  esm.MMESpec(esm.MMEOptions{}),
		"gmm-ue":   gmm.DeviceSpec(gmm.DeviceOptions{FixParallelUpdate: fixed}),
		"gmm-sgsn": gmm.SGSNSpec(gmm.SGSNOptions{}),
		"sm-ue":    sm.DeviceSpec(sm.DeviceOptions{FixParallelUpdate: fixed, FixKeepContext: fixed}),
		"sm-sgsn":  sm.SGSNSpec(sm.SGSNOptions{FixKeepContext: fixed}),
		"mm-ue":    mm.DeviceSpec(mm.DeviceOptions{FixParallelUpdate: fixed}),
		"mm-msc":   mm.MSCSpec(mm.MSCOptions{}),
		"cm-ue":    cm.DeviceSpec(cm.DeviceOptions{}),
		"cm-msc":   cm.MSCSpec(cm.MSCOptions{}),
		"rrc3g-ue": rrc3g.DeviceSpec(rrc3g.DeviceOptions{FixCSFBTag: fixed, FixDecoupleChannels: fixed}),
		"rrc4g-ue": rrc4g.DeviceSpec(rrc4g.DeviceOptions{}),
	}
}

func main() {
	var (
		list   = flag.Bool("list", false, "list available specs")
		spec   = flag.String("spec", "", "spec to inspect (see -list)")
		fixed  = flag.Bool("fixed", false, "render the §8-fixed variant")
		format = flag.String("format", "md", "output format: dot, md, check")
	)
	flag.Parse()

	all := specs(*fixed)
	if *list {
		names := make([]string, 0, len(all))
		for n := range all {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := all[n]
			fmt.Printf("%-10s %-10s %s (%d states, %d transitions)\n",
				n, s.Proto, s.Name, len(s.States()), len(s.Transitions))
		}
		return
	}

	s, ok := all[*spec]
	if !ok {
		fmt.Fprintf(os.Stderr, "cnetspec: unknown spec %q (try -list)\n", *spec)
		os.Exit(1)
	}
	switch *format {
	case "dot":
		fmt.Print(s.DOT())
	case "md":
		fmt.Print(s.Describe())
	case "check":
		if err := s.Validate(); err != nil {
			fmt.Println("validate:", err)
			os.Exit(2)
		}
		fmt.Println("validate: ok")
		if u := s.UnreachableStates(); len(u) > 0 {
			fmt.Println("unreachable states:", u)
			os.Exit(2)
		}
		fmt.Println("unreachable states: none")
		if d := s.DeadEndStates(); len(d) > 0 {
			fmt.Println("dead-end states:", d)
			os.Exit(2)
		}
		fmt.Println("dead-end states: none")
	default:
		fmt.Fprintf(os.Stderr, "cnetspec: unknown format %q\n", *format)
		os.Exit(1)
	}
}
