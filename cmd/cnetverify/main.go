// Command cnetverify runs CNetVerifier's screening phase (§3.2): it
// model-checks the scoped protocol worlds for the paper's findings and
// prints property violations with their counterexamples.
//
// Usage:
//
//	cnetverify [-world all|s1|s2|s3|s4cs|s4ps|s6|multiue|multiue-shared] [-fixed] [-strategy dfs|bfs|walk]
//	           [-depth N] [-states N] [-verbose] [-skip-lint]
//	           [-por] [-sym] [-compact] [-violations] [-stats]
//	           [-timing] [-timing-profile nas|degenerate]
//	           [-workers N] [-parallel N] [-budget N] [-first]
//	           [-cpuprofile FILE] [-memprofile FILE]
//
// -por enables partial-order reduction for dfs/bfs: the static effect
// analysis (internal/lint/effects) decomposes the world into
// independence clusters and each cluster's projection is screened
// separately. -violations prints only the canonical sorted
// finding/property/description lines, so a -por run can be
// byte-compared against a plain run (paths and step counts differ).
//
// -sym enables symmetry reduction for dfs/bfs on worlds declaring a
// replica structure (multiue, multiue-shared): the visited set is keyed
// by the canonical encoding that sorts replica sub-encodings, so the
// search explores one representative per UE-permutation orbit and the
// violation set is closed back over the permutations afterwards. A -sym
// -violations run byte-compares equal against a plain run. -sym and
// -por compose: each cluster projection canonicalizes its own replicas.
//
// -compact switches the visited set to hash compaction (Spin's
// supertrace idea): only a 48-bit fingerprint is kept per state, ~8
// bytes of table instead of the full encoding arena, at the price of a
// bounded probability that two distinct states merge. The per-world
// union bound on that probability is reported by -stats as "omission".
// Use it to push depth/state bounds on the multi-UE worlds past what
// exact screening can hold in memory; exact mode remains the default
// and the only mode whose violation sets are certificates.
//
// -timing enables discrete virtual time: the scenario's periodic env
// events are replaced by first-class timers with [earliest, latest]
// expiry windows, and the engines enumerate exactly the admissible
// expiry orderings (an expiry is schedulable only while no other armed
// timer must already have fired). -timing-profile nas (default) arms
// the 3GPP periodic-update timers (T3412/T3212/T3312) with distinct
// realistic windows — this reaches timing-only violations the untimed
// scenario never offers. -timing-profile degenerate arms zero-width
// always-fireable windows instead, which is provably equivalent to
// untimed screening: the ci.sh timing gate byte-compares its
// -violations output against untimed runs across every standard world,
// reduction and worker count. Composes with -por, -sym, -compact and
// -workers.
//
// -stats prints, per world, the visited-table diagnostics (slot
// occupancy, growth count, probe-length histogram, arena bytes) and a
// final process memory summary — the knobs to watch when sizing
// -states against available memory.
//
// -cpuprofile and -memprofile write pprof profiles of the campaign (the
// heap profile is taken after the run, post-GC); feed them to
// `go tool pprof` when hunting screening hot spots.
//
// -workers sets the exploration goroutines per world (the work-stealing
// engine; 1 = sequential). -parallel screens that many worlds
// concurrently. -budget shares one pool of distinct-state tokens across
// the whole campaign. -first cancels everything at the first violation.
// Parallel runs report the same violation sets and coverage as
// sequential runs (see DESIGN.md, determinism contract).
//
// Each world passes through the internal/lint structural gate before
// exploration; -skip-lint bypasses the gate (see cmd/cnetlint for the
// standalone analyzer).
//
// Exit status is 2 when a property violation is found in a fixed world
// (the §8 solutions must be clean), 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
	"cnetverifier/internal/validate"
)

func main() {
	var (
		world    = flag.String("world", "all", "scoped world: all, s1, s2, s3, s4cs, s4ps, s6, multiue, multiue-shared")
		fixed    = flag.Bool("fixed", false, "enable the §8 fixes")
		strategy = flag.String("strategy", "dfs", "exploration strategy: dfs, bfs, walk")
		depth    = flag.Int("depth", 0, "max path depth (0 = world default)")
		states   = flag.Int("states", 0, "max distinct states (0 = default)")
		walks    = flag.Int("walks", 1000, "random walks (strategy=walk)")
		seed     = flag.Int64("seed", 1, "random-walk seed")
		verbose  = flag.Bool("verbose", false, "print full counterexamples")
		doValid  = flag.Bool("validate", false, "run the phase-2 validation campaign (replay counterexamples on the emulator)")
		coverage = flag.Bool("coverage", false, "print per-process transition coverage of each screening run")
		skipLint = flag.Bool("skip-lint", false, "skip the structural lint gate and explore the world even with error-severity findings")
		por      = flag.Bool("por", false, "enable partial-order reduction (cluster decomposition over the static effect analysis; dfs/bfs only)")
		sym      = flag.Bool("sym", false, "enable symmetry reduction (canonical replica-permutation quotient; dfs/bfs only)")
		onlyViol = flag.Bool("violations", false, "print only the canonical violation set (sorted property/description lines), for byte-comparing runs")
		compact  = flag.Bool("compact", false, "hash-compaction visited set (~8 B/state, no exactness arena); the per-world omission-probability bound is reported with -stats")
		stats    = flag.Bool("stats", false, "print per-world visited-table statistics (occupancy, probe histogram, arena bytes) and the process memory high-water mark")
		timing   = flag.Bool("timing", false, "discrete virtual time: model periodic protocol timers as first-class [earliest, latest] expiry windows (see -timing-profile)")
		timProf  = flag.String("timing-profile", "nas", "timer-window derivation: nas (realistic T3412/T3212/T3312 windows) or degenerate (zero-width windows, provably equivalent to untimed screening — the ci.sh differential gate)")
		workers  = flag.Int("workers", 1, "exploration workers per world (>1 = parallel engine)")
		parallel = flag.Int("parallel", 1, "worlds screened concurrently")
		budget   = flag.Int("budget", 0, "shared distinct-state budget across the campaign (0 = none)")
		first    = flag.Bool("first", false, "cancel the whole campaign at the first violation")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetverify:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cnetverify:", err)
			os.Exit(1)
		}
		cpuProfiling = true
	}
	memProfile = *memProf

	if *doValid {
		outcomes, err := validate.Campaign(validate.Config{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetverify:", err)
			exit(1)
		}
		for _, o := range outcomes {
			fmt.Println(o)
		}
		exit(0)
	}

	scoped, err := selectWorlds(*world, *fixed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetverify:", err)
		exit(1)
	}
	if *timing {
		profile, err := core.ParseTimingProfile(*timProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetverify:", err)
			exit(1)
		}
		for i := range scoped {
			scoped[i], err = core.WithTiming(scoped[i], profile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetverify:", err)
				exit(1)
			}
		}
	}

	perWorld := func(s core.Scoped) check.Options {
		opt := s.Options
		switch strings.ToLower(*strategy) {
		case "dfs":
			opt.Strategy = check.DFS
		case "bfs":
			opt.Strategy = check.BFS
		case "walk":
			opt.Strategy = check.RandomWalk
			opt.Walks = *walks
			opt.Seed = *seed
		default:
			fmt.Fprintf(os.Stderr, "cnetverify: unknown strategy %q\n", *strategy)
			exit(1)
		}
		if *depth > 0 {
			opt.MaxDepth = *depth
		}
		if *states > 0 {
			opt.MaxStates = *states
		}
		if *skipLint {
			opt.SkipLint = true
		}
		opt.POR = *por
		opt.Symmetry = *sym
		opt.Compact = *compact
		return opt
	}
	results, err := core.ScreenWorlds(scoped, perWorld, core.CampaignOptions{
		Parallel:          *parallel,
		Workers:           *workers,
		StateBudget:       *budget,
		CancelOnViolation: *first,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetverify:", err)
		exit(1)
	}

	if *onlyViol {
		// POR runs explore cluster projections, so step counts and
		// counterexample paths legitimately differ from plain runs;
		// the (world, property, description) set is the engine's
		// determinism contract, and this mode prints exactly that so
		// ci.sh can diff a -por run against a plain run byte for byte.
		var lines []string
		for _, r := range results {
			f, _ := core.FindingByID(r.Finding)
			for _, v := range r.Result.Violations {
				lines = append(lines, fmt.Sprintf("%s\t%s\t%s", f.ID, v.Property, v.Desc))
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
		exit(0)
	}

	fmt.Print(core.Report(results, *verbose))
	if *stats {
		for _, r := range results {
			f, _ := core.FindingByID(r.Finding)
			fmt.Printf("%s %s", f.ID, r.Result.Visited)
			if r.Result.Omission > 0 {
				fmt.Printf(", omission ≤ %.3g", r.Result.Omission)
			}
			fmt.Println()
		}
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		fmt.Printf("memory: heap %0.1f MB live / %0.1f MB sys, %0.1f MB allocated total\n",
			float64(m.HeapAlloc)/(1<<20), float64(m.Sys)/(1<<20), float64(m.TotalAlloc)/(1<<20))
	}
	if *coverage {
		for i, r := range results {
			fmt.Print(core.CoverageSummary(scoped[i], r))
		}
	}

	if *fixed {
		for _, r := range results {
			if r.Violated() {
				fmt.Fprintln(os.Stderr, "cnetverify: fixed world still violates properties")
				exit(2)
			}
		}
	}
	exit(0)
}

// cpuProfiling and memProfile record the -cpuprofile/-memprofile state
// so exit can finalize the profiles on every termination path (os.Exit
// skips deferred calls).
var (
	cpuProfiling bool
	memProfile   string
)

// exit flushes any active profiles and terminates with code.
func exit(code int) {
	if cpuProfiling {
		pprof.StopCPUProfile()
	}
	if memProfile != "" {
		if f, err := os.Create(memProfile); err != nil {
			fmt.Fprintln(os.Stderr, "cnetverify:", err)
		} else {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cnetverify:", err)
			}
			f.Close()
		}
	}
	os.Exit(code)
}

func selectWorlds(name string, fixed bool) ([]core.Scoped, error) {
	switch strings.ToLower(name) {
	case "all":
		if fixed {
			return core.FixedModels(), nil
		}
		return core.ScopedModels(), nil
	case "s1":
		return []core.Scoped{core.S1World(fixed)}, nil
	case "s2":
		return []core.Scoped{core.S2World(fixed)}, nil
	case "s3":
		return []core.Scoped{core.S3World(fixed, names.SwitchReselect)}, nil
	case "s4cs", "s4":
		return []core.Scoped{core.S4CSWorld(fixed)}, nil
	case "s4ps":
		return []core.Scoped{core.S4PSWorld(fixed)}, nil
	case "s6":
		return []core.Scoped{core.S6World(fixed)}, nil
	case "multiue":
		return []core.Scoped{core.MultiUEWorld(3, fixed)}, nil
	case "multiue-shared":
		return []core.Scoped{core.MultiUEWorldShared(3, fixed)}, nil
	default:
		return nil, fmt.Errorf("unknown world %q", name)
	}
}
