// Command cnettrace parses and analyzes §3.3-format protocol traces
// (as produced by the emulator's trace collector): it filters records
// and can measure the latency between two matching events, the
// primitive behind the validation-phase measurements.
//
// Usage:
//
//	cnettrace [-f FILE] [-module MM] [-system 3G|4G] [-type STATE|SIGNAL|CONFIG|ERROR|INFO]
//	          [-contains TEXT] [-span-start TEXT -span-end TEXT] [-count]
//
// Without -f the trace is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cnetverifier/internal/trace"
	"cnetverifier/internal/types"
)

func main() {
	var (
		file      = flag.String("f", "", "trace file (default stdin)")
		module    = flag.String("module", "", "filter by module")
		system    = flag.String("system", "", "filter by system (3G or 4G)")
		typ       = flag.String("type", "", "filter by trace type")
		contains  = flag.String("contains", "", "filter by description substring")
		spanStart = flag.String("span-start", "", "measure: description substring of the start event")
		spanEnd   = flag.String("span-end", "", "measure: description substring of the end event")
		count     = flag.Bool("count", false, "print only the number of matching records")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnettrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	recs, err := trace.Read(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnettrace:", err)
		os.Exit(1)
	}

	filter := trace.Filter{
		Module:   *module,
		Contains: *contains,
		Type:     trace.Type(*typ),
	}
	switch *system {
	case "3G":
		filter.System = types.Sys3G
	case "4G":
		filter.System = types.Sys4G
	case "":
	default:
		fmt.Fprintf(os.Stderr, "cnettrace: unknown system %q\n", *system)
		os.Exit(1)
	}
	matched := filter.Apply(recs)

	if *spanStart != "" || *spanEnd != "" {
		d, ok := trace.Span(recs,
			trace.Filter{Contains: *spanStart},
			trace.Filter{Contains: *spanEnd})
		if !ok {
			fmt.Fprintln(os.Stderr, "cnettrace: span events not found")
			os.Exit(2)
		}
		fmt.Printf("span %q -> %q: %v\n", *spanStart, *spanEnd, d)
		return
	}

	if *count {
		fmt.Println(len(matched))
		return
	}
	for _, rec := range matched {
		fmt.Println(rec.String())
	}
}
