// Command cnetfuzz runs coverage-guided fuzzing over a scoped world's
// scenario schedules (internal/fuzz) and ddmin-shrinks violation
// traces to 1-minimal counterexamples.
//
// Usage:
//
//	cnetfuzz [-world s1|s2|s3|s4cs|s4ps|s6|full] [-fixed]
//	         [-budget N] [-workers N] [-seed N] [-round N]
//	         [-max-events N] [-drain N] [-corpus DIR]
//	         [-shrink] [-screen] [-cov-report] [-json]
//	         [-min-new N] [-first]
//
// Two modes:
//
//   - Fuzzing (default): mutate–execute–keep rounds against the chosen
//     world until -budget applied transitions are spent. -corpus names a
//     directory of *.sched seed schedules; inputs kept for new coverage
//     are written back there. -cov-report prints the per-process
//     coverage table plus a uniform-random control arm at the same
//     budget (the fuzz-vs-random comparison of EXPERIMENTS.md).
//     -min-new exits 1 unless at least N inputs lit up new coverage —
//     the ci.sh smoke gate.
//
//   - Screening post-processing (-screen): take violations from a
//     core.ScreenWorlds campaign instead of fuzzing. With -shrink, each
//     screening counterexample is ddmin-reduced and re-verified; this is
//     the pipeline that regenerates the minimized golden corpus.
//
// -shrink applies to both modes: every violation found is reduced to a
// trace from which no single step can be removed, re-verified with
// check.Replay, and printed with its stability digest.
//
// Exit status: 1 on error or an unmet -min-new floor, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/fuzz"
	"cnetverifier/internal/model"
)

func main() {
	var (
		world     = flag.String("world", "full", "world to fuzz: "+strings.Join(core.WorldNames(), ", ")+", or all (with -screen)")
		fixed     = flag.Bool("fixed", false, "enable the §8 fixes")
		budget    = flag.Int("budget", 50000, "total applied-transition budget")
		workers   = flag.Int("workers", 1, "executor goroutines (any count gives identical results)")
		seed      = flag.Int64("seed", 1, "run seed")
		round     = flag.Int("round", 32, "candidate schedules per round")
		maxEvents = flag.Int("max-events", 12, "max environment events per schedule")
		drain     = flag.Int("drain", 8, "queued messages processed after each injection")
		corpusDir = flag.String("corpus", "", "schedule corpus directory (load *.sched seeds, write kept inputs back)")
		doShrink  = flag.Bool("shrink", false, "ddmin-shrink every violation to a 1-minimal trace")
		doScreen  = flag.Bool("screen", false, "take violations from a screening campaign instead of fuzzing")
		covReport = flag.Bool("cov-report", false, "print the coverage table and the uniform-random control arm")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable JSON summary")
		minNew    = flag.Int("min-new", 0, "exit 1 unless at least N inputs lit up new coverage")
		first     = flag.Bool("first", false, "stop fuzzing at the end of the first violating round")
		timing    = flag.Bool("timing", false, "discrete virtual time: fuzz with protocol timers as [earliest, latest] expiry windows, timer-expiry directives and window stretches join the mutation operators")
		timProf   = flag.String("timing-profile", "nas", "timer-window derivation for -timing: nas or degenerate (see cnetverify)")
	)
	flag.Parse()

	if *doScreen {
		if err := screenMode(*world, *fixed, *doShrink, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
		return
	}

	s, ok := core.StandardWorlds(*fixed)[strings.ToLower(*world)]
	if !ok {
		fmt.Fprintf(os.Stderr, "cnetfuzz: unknown world %q (want %s)\n", *world, strings.Join(core.WorldNames(), ", "))
		os.Exit(1)
	}
	if *timing {
		profile, err := core.ParseTimingProfile(*timProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
		if s, err = core.WithTiming(s, profile); err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
	}

	opt := fuzz.Options{
		Budget:      *budget,
		Workers:     *workers,
		Seed:        *seed,
		MaxEvents:   *maxEvents,
		Drain:       *drain,
		RoundSize:   *round,
		Pool:        s.Scenario.Events(s.World),
		TimerPool:   s.World.TimerEvents(),
		StopAtFirst: *first,
	}
	if *corpusDir != "" {
		seeds, err := loadCorpus(*corpusDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
		opt.Corpus = seeds
	}

	res, err := fuzz.Fuzz(s.World, s.Props, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
		os.Exit(1)
	}

	var baseline *fuzz.Result
	if *covReport {
		if baseline, err = fuzz.RandomBaseline(s.World, s.Props, opt); err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
	}

	var shrunk []fuzz.ShrinkResult
	if *doShrink {
		for _, v := range res.Violations {
			sr, err := fuzz.Shrink(s.World, s.Props, v, fuzz.ShrinkOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
				os.Exit(1)
			}
			shrunk = append(shrunk, *sr)
		}
	}

	if *corpusDir != "" {
		if err := saveCorpus(*corpusDir, res.Corpus); err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		out := struct {
			World    string              `json:"world"`
			Fuzz     *fuzz.Result        `json:"fuzz"`
			Baseline *fuzz.Result        `json:"baseline,omitempty"`
			Shrunk   []fuzz.ShrinkResult `json:"shrunk,omitempty"`
		}{*world, res, baseline, shrunk}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetfuzz:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		printFuzz(*world, s.World, res, baseline, *covReport)
		printShrunk(shrunk)
	}

	if res.NewCoverageInputs < *minNew {
		fmt.Fprintf(os.Stderr, "cnetfuzz: only %d new-coverage inputs, want >= %d\n", res.NewCoverageInputs, *minNew)
		os.Exit(1)
	}
}

func printFuzz(world string, w *model.World, res, baseline *fuzz.Result, covReport bool) {
	fmt.Printf("fuzz %s: %d schedules in %d rounds, %d steps, %d new-coverage inputs, %d violation(s)\n",
		world, res.Schedules, res.Rounds, res.Steps, res.NewCoverageInputs, len(res.Violations))
	fmt.Printf("coverage digest %s\n", res.CoverageDigest)
	if covReport {
		fmt.Print(res.Coverage.Report(w))
		if baseline != nil {
			fmt.Printf("uniform-random control at the same budget: %d/%d transitions, %d pairs (%d steps)\n",
				baseline.TransitionsFired, baseline.TransitionsTotal, baseline.PairsCovered, baseline.Steps)
			fmt.Print(baseline.Coverage.Report(w))
		}
	}
	for _, v := range res.Violations {
		fmt.Print(check.FormatCounterexample(v))
	}
}

func printShrunk(shrunk []fuzz.ShrinkResult) {
	for _, sr := range shrunk {
		fmt.Printf("shrunk %s (%s): %d -> %d steps in %d tests, digest %s\n",
			sr.Property, sr.Desc, sr.OriginalSteps, sr.Steps, sr.Tests, sr.Digest)
		for i, s := range sr.Path {
			fmt.Printf("  %3d. %s\n", i+1, s)
		}
	}
}

// screenMode runs the screening campaign and (with -shrink) reduces its
// counterexamples — the pipeline behind the minimized golden corpus.
func screenMode(world string, fixed, doShrink, jsonOut bool) error {
	var scoped []core.Scoped
	if strings.ToLower(world) == "all" {
		scoped = core.ScopedModels()
	} else {
		s, ok := core.StandardWorlds(fixed)[strings.ToLower(world)]
		if !ok {
			return fmt.Errorf("unknown world %q", world)
		}
		scoped = []core.Scoped{s}
	}
	results, err := core.ScreenWorlds(scoped, nil, core.CampaignOptions{})
	if err != nil {
		return err
	}
	if !doShrink {
		fmt.Print(core.Report(results, false))
		return nil
	}
	shrunk, err := core.ShrinkScreened(scoped, results, fuzz.ShrinkOptions{})
	if err != nil {
		return err
	}
	if jsonOut {
		out := make(map[string][]fuzz.ShrinkResult, len(results))
		for i, r := range results {
			out[string(r.Finding)] = shrunk[i]
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	for i, r := range results {
		fmt.Printf("%s: %d violation(s)\n", r.Finding, len(r.Result.Violations))
		printShrunk(shrunk[i])
	}
	return nil
}

// loadCorpus reads every *.sched file of dir in name order.
func loadCorpus(dir string) ([]fuzz.Schedule, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.sched"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []fuzz.Schedule
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		s, err := fuzz.DecodeSchedule(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// saveCorpus writes the kept schedules as kept-NNNN.sched files.
func saveCorpus(dir string, corpus []fuzz.Schedule) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, s := range corpus {
		p := filepath.Join(dir, fmt.Sprintf("kept-%04d.sched", i))
		if err := os.WriteFile(p, []byte(fuzz.EncodeSchedule(s)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
