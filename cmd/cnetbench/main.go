// Command cnetbench regenerates every table and figure of the paper's
// evaluation from this repository's mechanisms and prints them in the
// paper's layout.
//
// Usage:
//
//	cnetbench [-exp all|table1|table3|table4|table5|table6|fig4|fig7|fig8|fig9|fig10|fig12|fig13|sec93]
//	          [-runs N] [-seed N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/experiments"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/validate"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to regenerate (table1..6, fig4..13, sec93, s5vol, inflation, coverage, validate, perf, por, sym, por+sym, vlean, vlean+por+sym, campaign)")
		runs    = flag.Int("runs", 100, "runs per distribution-style experiment")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		out     = flag.String("o", "", "write the report to FILE instead of stdout")
		asJSON  = flag.Bool("json", false, "emit machine-readable JSON (perf experiment)")
		perfLbl = flag.String("perf-label", "current", "label stored in the perf JSON report")
	)
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	want := strings.ToLower(*exp)
	all := want == "all"
	ran := false
	section := func(name string, f func() (string, error)) {
		if !all && want != name {
			return
		}
		ran = true
		s, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cnetbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w, s)
	}

	section("table1", experiments.Table1)
	section("table3", func() (string, error) {
		return experiments.RenderTable3(experiments.Table3(*seed)), nil
	})
	section("table4", func() (string, error) {
		return experiments.RenderTable4(experiments.Table4(*seed)), nil
	})
	section("table5", func() (string, error) {
		return "Table 5: user study\n" + experiments.Table5(*seed).Table(), nil
	})
	section("table6", func() (string, error) {
		return experiments.RenderTable6(experiments.Table6StuckIn3G(*runs, *seed)), nil
	})
	section("fig4", func() (string, error) {
		return experiments.RenderFigure4(experiments.Figure4RecoveryTime(*runs, *seed)), nil
	})
	section("fig7", func() (string, error) {
		return experiments.RenderFigure7(experiments.Figure7CallSetup(netemu.OPI(), 60, *seed)), nil
	})
	section("fig8", func() (string, error) {
		return experiments.RenderFigure8(experiments.Figure8CDFs(*runs*4, *seed)), nil
	})
	section("fig9", func() (string, error) {
		var b strings.Builder
		for _, p := range netemu.Operators() {
			for _, uplink := range []bool{false, true} {
				b.WriteString(experiments.RenderFigure9(p, uplink,
					experiments.Figure9Rates(p, uplink, *runs, *seed)))
				b.WriteByte('\n')
			}
		}
		return b.String(), nil
	})
	section("fig10", func() (string, error) {
		return experiments.RenderFigure10(experiments.Figure10Trace(*seed)), nil
	})
	section("fig12", func() (string, error) {
		rates := []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
		without := experiments.Figure12DetachVsDrop(rates, *runs, false, *seed)
		with := experiments.Figure12DetachVsDrop(rates, *runs, true, *seed)
		var b strings.Builder
		b.WriteString(experiments.RenderFigure12Left(without, with))
		b.WriteByte('\n')
		times := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second,
			4 * time.Second, 5 * time.Second, 6 * time.Second}
		b.WriteString(experiments.RenderFigure12Right(
			experiments.Figure12CallDelay(times, false),
			experiments.Figure12CallDelay(times, true)))
		return b.String(), nil
	})
	section("fig13", func() (string, error) {
		return experiments.RenderFigure13(experiments.Figure13Rates()), nil
	})
	section("sec93", func() (string, error) {
		return experiments.RenderSection93(experiments.Section93CrossSystem(*runs, *seed)), nil
	})
	section("s5vol", func() (string, error) {
		return experiments.S5AffectedVolumes(113, 7).String(), nil
	})
	section("coverage", func() (string, error) {
		var b strings.Builder
		for _, sc := range core.ScopedModels() {
			r, err := core.Screen(sc, check.Options{})
			if err != nil {
				return "", err
			}
			b.WriteString(core.CoverageSummary(sc, r))
		}
		return b.String(), nil
	})
	section("validate", func() (string, error) {
		outcomes, err := validate.Campaign(validate.Config{})
		if err != nil {
			return "", err
		}
		var b strings.Builder
		b.WriteString("Two-phase validation campaign (§3.1):\n")
		for _, o := range outcomes {
			fmt.Fprintf(&b, "  %s\n", o)
		}
		return b.String(), nil
	})
	if want == "perf" {
		// Screening throughput (ISSUE 4): not part of -exp all — it
		// reruns every scoped world many times under testing.Benchmark.
		ran = true
		prs, err := experiments.PerfScreen(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench: perf:", err)
			os.Exit(1)
		}
		if *asJSON {
			s, err := experiments.RenderPerfJSON(*perfLbl, prs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetbench: perf:", err)
				os.Exit(1)
			}
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, experiments.RenderPerfTable(prs))
		}
	}

	if want == "por" {
		// Partial-order reduction on the 3-UE world (ISSUE 6): not part
		// of -exp all for the same reason as perf.
		ran = true
		prs, err := experiments.PerfPOR()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench: por:", err)
			os.Exit(1)
		}
		if *asJSON {
			s, err := experiments.RenderPerfJSON(*perfLbl, prs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetbench: por:", err)
				os.Exit(1)
			}
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, experiments.RenderPerfTable(prs))
		}
	}

	if want == "campaign" {
		// Population-scale load engine throughput: a 100k-UE campaign
		// per worker count under testing.Benchmark. Not part of -exp
		// all for the same reason as perf; states_per_sec reads as
		// procedure occurrences per second.
		ran = true
		prs, err := experiments.PerfCampaign(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench: campaign:", err)
			os.Exit(1)
		}
		if *asJSON {
			s, err := experiments.RenderPerfJSON(*perfLbl, prs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetbench: campaign:", err)
				os.Exit(1)
			}
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, experiments.RenderPerfTable(prs))
		}
	}

	if want == "vlean" || want == "vlean+por+sym" {
		// Memory-lean visited table (lock-free fingerprint store +
		// hash compaction): throughput/allocation rows for every scoped
		// world and the exact-vs-compact comparison on the shared-core
		// multi-UE worlds; "vlean+por+sym" is the completion demo where
		// compact mode finishes a 4-UE POR+Symmetry screen inside a
		// visited-set byte budget that truncates exact mode. Not part of
		// -exp all for the same reason as perf.
		ran = true
		var prs []experiments.PerfRun
		var err error
		if want == "vlean" {
			prs, err = experiments.PerfVlean()
		} else {
			prs, err = experiments.PerfVleanPorSym()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench:", want, err)
			os.Exit(1)
		}
		if *asJSON {
			s, err := experiments.RenderPerfJSON(*perfLbl, prs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetbench:", want, err)
				os.Exit(1)
			}
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, experiments.RenderPerfTable(prs))
		}
	}

	if want == "sym" || want == "por+sym" {
		// Symmetry reduction on the shared-core 4-UE world (the world
		// POR cannot decompose): the same screening run with
		// check.Options.Symmetry off and on — composed with POR for
		// -exp por+sym. Not part of -exp all: the plain leg enumerates
		// the full 34^4-state product. The state-count ratio is the
		// canonicalization acceptance number recorded in
		// BENCH_screen.json under this label.
		ran = true
		prs, err := experiments.PerfSym(want == "por+sym")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cnetbench:", want, err)
			os.Exit(1)
		}
		if *asJSON {
			s, err := experiments.RenderPerfJSON(*perfLbl, prs)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cnetbench:", want, err)
				os.Exit(1)
			}
			fmt.Fprintln(w, s)
		} else {
			fmt.Fprintln(w, experiments.RenderPerfTable(prs))
		}
	}

	section("inflation", func() (string, error) {
		rates := []float64{1, 5, 10, 30, 60}
		return experiments.RenderInflation(
			experiments.InflationSweep(rates, 24*time.Hour, false, *seed),
			experiments.InflationSweep(rates, 24*time.Hour, true, *seed)), nil
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "cnetbench: unknown experiment %q\n", *exp)
		os.Exit(1)
	}
}
