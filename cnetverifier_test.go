package cnetverifier_test

import (
	"strings"
	"testing"

	cnv "cnetverifier"
)

func TestVerifyEndToEnd(t *testing.T) {
	report, err := cnv.Verify()
	if err != nil {
		t.Fatal(err)
	}
	discovered := report.Discovered()
	want := map[cnv.FindingID]bool{cnv.S1: true, cnv.S2: true, cnv.S3: true, cnv.S4: true, cnv.S6: true}
	for _, id := range discovered {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("findings not discovered: %v (got %v)", want, discovered)
	}
	if !report.Clean() {
		t.Fatal("fixed configurations are not clean")
	}
	out := report.String()
	if !strings.Contains(out, "defective configurations") || !strings.Contains(out, "no violation") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestVerifyFinding(t *testing.T) {
	r, err := cnv.VerifyFinding(cnv.S3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Violated() {
		t.Fatal("S3 not discovered")
	}
	r, err = cnv.VerifyFinding(cnv.S3, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violated() {
		t.Fatal("fixed S3 still violated")
	}
	if _, err := cnv.VerifyFinding(cnv.S5, false); err == nil {
		t.Fatal("S5 has no screening world; expected an error")
	}
}

func TestFindingsRegistry(t *testing.T) {
	fs := cnv.Findings()
	if len(fs) != 6 {
		t.Fatalf("findings = %d", len(fs))
	}
}

func TestPhoneFacade(t *testing.T) {
	models := cnv.PhoneModels()
	if len(models) != 5 {
		t.Fatalf("models = %d", len(models))
	}
	p := cnv.NewPhone(models[2], cnv.OPII(), cnv.Fixes{}, 1)
	p.PowerOn(cnv.Sys4G)
	p.DataOn()
	p.Dial()
	st := p.Status()
	if !st.InCall || st.System != cnv.Sys3G {
		t.Fatalf("CSFB via facade failed: %s", st)
	}
	p.HangUp()
	if st := p.Status(); !st.StuckReturnPending {
		t.Fatalf("OP-II should strand the phone: %s", st)
	}

	fixedPhone := cnv.NewPhone(models[2], cnv.OPII(), cnv.AllFixes(), 1)
	fixedPhone.PowerOn(cnv.Sys4G)
	fixedPhone.DataOn()
	fixedPhone.Dial()
	fixedPhone.HangUp()
	if st := fixedPhone.Status(); st.System != cnv.Sys4G {
		t.Fatalf("fixed phone not returned to 4G: %s", st)
	}
}
