// Screening hot-path benchmarks: raw checker throughput on each scoped
// S1–S6 world, sequential and with the parallel frontier engine. These
// are the numbers BENCH_screen.json and the EXPERIMENTS.md perf table
// track (states/sec, B/op, allocs/op) — run with:
//
//	go test -bench=Screen -benchmem
package cnetverifier_test

import (
	"fmt"
	"testing"

	"cnetverifier/internal/core"
	"cnetverifier/internal/names"
)

// screenWorlds are the scoped worlds benchmarked by BenchmarkScreen*,
// mirroring the golden-trace set.
func screenWorlds() []struct {
	name string
	s    core.Scoped
} {
	return []struct {
		name string
		s    core.Scoped
	}{
		{"S1", core.S1World(false)},
		{"S2", core.S2World(false)},
		{"S3", core.S3World(false, names.SwitchReselect)},
		{"S4CS", core.S4CSWorld(false)},
		{"S4PS", core.S4PSWorld(false)},
		{"S6", core.S6World(false)},
	}
}

func benchScreen(b *testing.B, s core.Scoped, workers int) {
	opt := s.Options
	opt.Workers = workers
	b.ReportAllocs()
	states := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := core.Screen(s, opt)
		if err != nil {
			b.Fatal(err)
		}
		states = r.Result.States
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(states)*float64(b.N)/sec, "states/s")
	}
}

// BenchmarkScreenWorlds measures sequential screening of every scoped
// world — the per-transition cost of the clone/apply/encode/hash loop.
func BenchmarkScreenWorlds(b *testing.B) {
	for _, pw := range screenWorlds() {
		b.Run(pw.name, func(b *testing.B) { benchScreen(b, pw.s, 1) })
	}
}

// BenchmarkScreenMultiUE measures the partial-order reduction on the
// 3-UE world: the same screening with the cluster decomposition off
// (full interleaving product) and on (sum of the per-cluster
// projections). The states/s metric is incomparable between the two —
// the point is the absolute time and the states count in the logs.
func BenchmarkScreenMultiUE(b *testing.B) {
	for _, por := range []bool{false, true} {
		b.Run(fmt.Sprintf("por=%v", por), func(b *testing.B) {
			s := core.MultiUEWorld(3, false)
			opt := s.Options
			opt.POR = por
			b.ReportAllocs()
			states := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := core.Screen(s, opt)
				if err != nil {
					b.Fatal(err)
				}
				states = r.Result.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkScreenMultiUEShared measures symmetry reduction on the
// shared-core 3-UE world, where one MME/HSS context block couples every
// stack into a single effect cluster and POR degenerates: the same
// screening over the {POR off/on} x {Symmetry off/on} square. Like the
// POR benchmark, the states metric in the logs is the point — the
// canonical quotient divides the state count by close to 3!.
func BenchmarkScreenMultiUEShared(b *testing.B) {
	for _, por := range []bool{false, true} {
		for _, sym := range []bool{false, true} {
			b.Run(fmt.Sprintf("por=%v/sym=%v", por, sym), func(b *testing.B) {
				s := core.MultiUEWorldShared(3, false)
				opt := s.Options
				opt.POR = por
				opt.Symmetry = sym
				b.ReportAllocs()
				states := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					r, err := core.Screen(s, opt)
					if err != nil {
						b.Fatal(err)
					}
					states = r.Result.States
				}
				b.ReportMetric(float64(states), "states")
			})
		}
	}
}

// BenchmarkScreenWorkers measures the widest scoped world (S6) under
// the work-stealing frontier engine as the worker count grows.
func BenchmarkScreenWorkers(b *testing.B) {
	s := core.S6World(false)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchScreen(b, s, workers)
		})
	}
}
