package cnetverifier_test

import (
	"cnetverifier/internal/radio"
	"cnetverifier/internal/types"
)

// Event constructors shared by the emulator benchmarks.

func powerOn() types.Message { return types.Message{Kind: types.MsgPowerOn} }

func switchCmd() types.Message { return types.Message{Kind: types.MsgInterSystemSwitchCommand} }

func deactPDP() types.Message {
	return types.Message{Kind: types.MsgDeactivatePDPRequest, Cause: types.CauseRegularDeactivation}
}

func reselect() types.Message { return types.Message{Kind: types.MsgInterSystemCellReselect} }

// radioDropper returns a seeded loss closure for the ablation benches.
func radioDropper(rate float64, seed int64) func() bool {
	d := radio.NewDropper(rate, seed)
	return d.Drop
}
