// Package bench holds the benchmark harness: one testing.B benchmark
// per table and figure in the paper's evaluation. Each benchmark
// regenerates its experiment through internal/experiments, reports the
// headline quantities via b.ReportMetric, and (once, under -v) echoes
// the full rows in the paper's layout.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package cnetverifier_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cnetverifier/internal/check"
	"cnetverifier/internal/core"
	"cnetverifier/internal/experiments"
	"cnetverifier/internal/fixes"
	"cnetverifier/internal/names"
	"cnetverifier/internal/netemu"
	"cnetverifier/internal/types"
	"cnetverifier/internal/userstudy"
	"cnetverifier/internal/validate"
)

// logOnce prints an experiment's rendered rows a single time per
// benchmark, so repeated b.N iterations do not flood the output.
var logOnce sync.Map

func echo(b *testing.B, key, s string) {
	b.Helper()
	if _, dup := logOnce.LoadOrStore(key, true); !dup {
		b.Log("\n" + s)
	}
}

// BenchmarkTable1_FindingSummary screens every scoped world (defective
// and fixed) — the full phase-1 pipeline behind Table 1.
func BenchmarkTable1_FindingSummary(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		var err error
		out, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	echo(b, "table1", out)
}

// BenchmarkTable3_PDPDeactCauses validates every Table 3 deactivation
// cause against the emulated stack.
func BenchmarkTable3_PDPDeactCauses(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(1)
	}
	reproduced := 0
	for _, r := range rows {
		if r.ReproducesS1 {
			reproduced++
		}
	}
	b.ReportMetric(float64(reproduced), "causes_reproducing_S1")
	echo(b, "table3", experiments.RenderTable3(rows))
}

// BenchmarkTable4_UpdateTriggers verifies the six update-triggering
// scenarios.
func BenchmarkTable4_UpdateTriggers(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4(1)
	}
	echo(b, "table4", experiments.RenderTable4(rows))
}

// BenchmarkTable5_UserStudy simulates the two-week user study.
func BenchmarkTable5_UserStudy(b *testing.B) {
	var res userstudy.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Table5(15)
	}
	b.ReportMetric(res.Occurrences[2].Rate()*100, "S3_pct")
	b.ReportMetric(res.Occurrences[4].Rate()*100, "S5_pct")
	echo(b, "table5", res.Table())
}

// BenchmarkTable6_StuckIn3G measures the post-CSFB 3G dwell per
// operator.
func BenchmarkTable6_StuckIn3G(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table6StuckIn3G(100, 1)
	}
	for _, r := range rows {
		switch r.Operator {
		case "OP-I":
			b.ReportMetric(r.Summary.Median, "OPI_median_s")
		case "OP-II":
			b.ReportMetric(r.Summary.Median, "OPII_median_s")
		}
	}
	echo(b, "table6", experiments.RenderTable6(rows))
}

// BenchmarkFigure4_RecoveryTime measures the S1 detach-recovery time.
func BenchmarkFigure4_RecoveryTime(b *testing.B) {
	var rows []experiments.Figure4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure4RecoveryTime(60, 1)
	}
	for _, r := range rows {
		if r.Operator == "OP-II" {
			b.ReportMetric(r.Summary.Max, "OPII_max_s")
		}
	}
	echo(b, "fig4", experiments.RenderFigure4(rows))
}

// BenchmarkFigure7_CallSetupRoute drives the Route-1 call series.
func BenchmarkFigure7_CallSetupRoute(b *testing.B) {
	var pts []experiments.Figure7Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure7CallSetup(netemu.OPI(), 60, 3)
	}
	b.ReportMetric(float64(len(pts)), "calls")
	echo(b, "fig7", experiments.RenderFigure7(pts))
}

// BenchmarkFigure8_UpdateCDF samples the four update-duration CDFs.
func BenchmarkFigure8_UpdateCDF(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderFigure8(experiments.Figure8CDFs(400, 1))
	}
	echo(b, "fig8", out)
}

// BenchmarkFigure9_RateDuringCall measures the with/without-call rates
// for both operators and directions.
func BenchmarkFigure9_RateDuringCall(b *testing.B) {
	var drop float64
	for i := 0; i < b.N; i++ {
		for _, p := range netemu.Operators() {
			for _, uplink := range []bool{false, true} {
				buckets := experiments.Figure9Rates(p, uplink, 40, 7)
				d := experiments.Figure9Drop(buckets)
				if p.Name == "OP-II" && uplink {
					drop = d
				}
			}
		}
	}
	b.ReportMetric(drop*100, "OPII_UL_drop_pct")
	echo(b, "fig9", experiments.RenderFigure9(netemu.OPII(), true,
		experiments.Figure9Rates(netemu.OPII(), true, 40, 7)))
}

// BenchmarkFigure10_ModulationTrace regenerates the example trace.
func BenchmarkFigure10_ModulationTrace(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderFigure10(experiments.Figure10Trace(1))
	}
	echo(b, "fig10", out)
}

// BenchmarkFigure12_DetachVsDrop runs the §9.1 drop-rate sweep with and
// without the reliable shim.
func BenchmarkFigure12_DetachVsDrop(b *testing.B) {
	rates := []float64{0, 0.05, 0.10}
	var without, with []experiments.Figure12LeftPoint
	for i := 0; i < b.N; i++ {
		without = experiments.Figure12DetachVsDrop(rates, 40, false, 1)
		with = experiments.Figure12DetachVsDrop(rates, 40, true, 1)
	}
	b.ReportMetric(float64(without[len(without)-1].Detaches), "detaches_at_10pct")
	b.ReportMetric(float64(with[len(with)-1].Detaches), "detaches_fixed")
	echo(b, "fig12l", experiments.RenderFigure12Left(without, with))
}

// BenchmarkFigure12_CallDelayVsUpdate runs the §9.1 HOL experiment.
func BenchmarkFigure12_CallDelayVsUpdate(b *testing.B) {
	times := []time.Duration{0, 2 * time.Second, 4 * time.Second, 6 * time.Second}
	var without, with []experiments.Figure12RightPoint
	for i := 0; i < b.N; i++ {
		without = experiments.Figure12CallDelay(times, false)
		with = experiments.Figure12CallDelay(times, true)
	}
	b.ReportMetric(without[len(without)-1].CallDelay.Seconds(), "delay_at_6s")
	b.ReportMetric(with[len(with)-1].CallDelay.Seconds(), "delay_fixed")
	echo(b, "fig12r", experiments.RenderFigure12Right(without, with))
}

// BenchmarkFigure13_DecoupledRates runs the §9.2 channel-plan
// comparison.
func BenchmarkFigure13_DecoupledRates(b *testing.B) {
	var rows []experiments.Figure13Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure13Rates()
	}
	echo(b, "fig13", experiments.RenderFigure13(rows))
}

// BenchmarkSection93_CrossSystem runs the §9.3 remedies.
func BenchmarkSection93_CrossSystem(b *testing.B) {
	var res experiments.Section93Result
	for i := 0; i < b.N; i++ {
		res = experiments.Section93CrossSystem(20, 1)
	}
	b.ReportMetric(res.FixedSwitch.Median, "fixed_median_s")
	b.ReportMetric(res.BrokenSwitch.Median, "broken_median_s")
	echo(b, "sec93", experiments.RenderSection93(res))
}

// --- Ablation and core-engine benchmarks ---

// BenchmarkChecker_S1DFS measures raw checker throughput on the S1
// world (DFS with dedup).
func BenchmarkChecker_S1DFS(b *testing.B) {
	w := core.S1World(false)
	var states int
	for i := 0; i < b.N; i++ {
		r, err := core.Screen(w, check.Options{})
		if err != nil {
			b.Fatal(err)
		}
		states = r.Result.States
	}
	b.ReportMetric(float64(states), "states")
}

// BenchmarkChecker_S2Strategies compares DFS, BFS and random walk on
// the lossy S2 world — the ablation for the exploration-strategy
// design choice.
func BenchmarkChecker_S2Strategies(b *testing.B) {
	for _, s := range []struct {
		name string
		st   check.Strategy
	}{{"DFS", check.DFS}, {"BFS", check.BFS}, {"Walk", check.RandomWalk}} {
		b.Run(s.name, func(b *testing.B) {
			w := core.S2World(false)
			opt := w.Options
			opt.Strategy = s.st
			opt.Walks = 200
			for i := 0; i < b.N; i++ {
				if _, err := core.Screen(w, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEmulator_S1Flow measures the end-to-end emulated S1 flow.
func BenchmarkEmulator_S1Flow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := netemu.NewWorld(int64(i) + 1)
		netemu.StandardStack(w, netemu.OPII(), netemu.FixSet{})
		w.InjectAt(0, names.UEEMM, powerOn())
		w.InjectAt(time.Second, names.UEGMM, switchCmd())
		w.InjectAt(2*time.Second, names.UESM, deactPDP())
		w.InjectAt(3*time.Second, names.UEEMM, reselect())
		w.Run()
	}
}

// BenchmarkAblation_S3SwitchOptions screens the S3 world under each of
// the three inter-system switching options of Figure 6a — the design
// choice DESIGN.md calls out: only "inter-system cell reselection"
// (OP-II) deadlocks; redirect (OP-I) and handover stay clean.
func BenchmarkAblation_S3SwitchOptions(b *testing.B) {
	options := []struct {
		name string
		opt  int
	}{
		{"Redirect", names.SwitchRedirect},
		{"Handover", names.SwitchHandover},
		{"Reselect", names.SwitchReselect},
	}
	for _, o := range options {
		b.Run(o.name, func(b *testing.B) {
			var violated bool
			for i := 0; i < b.N; i++ {
				r, err := core.Screen(core.S3World(false, o.opt), check.Options{})
				if err != nil {
					b.Fatal(err)
				}
				violated = r.Violated()
			}
			v := 0.0
			if violated {
				v = 1
			}
			b.ReportMetric(v, "MM_OK_violated")
			wantViolated := o.opt == names.SwitchReselect
			if violated != wantViolated {
				b.Fatalf("option %s: violated=%v, want %v", o.name, violated, wantViolated)
			}
		})
	}
}

// BenchmarkAblation_ShimRTO sweeps the reliable shim's retransmission
// timeout over a 20%-lossy link: shorter RTOs recover faster but
// retransmit more — the §8 shim's main tuning knob.
func BenchmarkAblation_ShimRTO(b *testing.B) {
	for _, rto := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond, 800 * time.Millisecond} {
		b.Run(rto.String(), func(b *testing.B) {
			var retx int
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				sim := netemu.NewSim(int64(i) + 1)
				drop := radioDropper(0.2, int64(i)+100)
				delivered := 0
				pair := fixes.NewReliablePair(sim, fixes.ReliableConfig{RTO: rto, MaxRetries: 30},
					20*time.Millisecond, 0, drop, drop,
					nil, func(types.Message) { delivered++ })
				for k := 0; k < 50; k++ {
					pair.A.Send(types.Message{Kind: types.MsgAttachRequest})
				}
				sim.Run()
				if delivered != 50 {
					b.Fatalf("delivered %d/50", delivered)
				}
				retx = pair.A.Retransmitted
				elapsed = sim.Now()
			}
			b.ReportMetric(float64(retx), "retransmissions")
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

// BenchmarkChecker_ParallelWorkers measures the work-stealing frontier
// engine on the S6 world (the largest scoped state space) as the worker
// count grows — the headline scaling number for the parallel engine.
// Workers=1 is the sequential baseline.
func BenchmarkChecker_ParallelWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := core.S6World(false)
			opt := w.Options
			opt.Workers = workers
			var states int
			for i := 0; i < b.N; i++ {
				r, err := core.Screen(w, opt)
				if err != nil {
					b.Fatal(err)
				}
				states = r.Result.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkWalk_ParallelWorkers measures random-walk screening of the
// full composite world with walks distributed over workers. Walk w
// draws its schedule from a seed derived from (Seed, w), so every
// worker count samples the identical set of walks.
func BenchmarkWalk_ParallelWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			w := core.FullWorld(core.FullConfig{SwitchOpt: names.SwitchReselect, LossyAir: true})
			opt := w.Options
			opt.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.Screen(w, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScreenCampaign runs the whole phase-1 screening sweep
// sequentially and with campaign-level parallelism (one goroutine per
// world) — the end-to-end speedup a multi-scenario campaign sees.
func BenchmarkScreenCampaign(b *testing.B) {
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ScreenWorlds(core.ScopedModels(), nil,
					core.CampaignOptions{Parallel: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChecker_ParanoidOverhead measures the cost of hash-collision
// verification (the Paranoid option) on the S3 world.
func BenchmarkChecker_ParanoidOverhead(b *testing.B) {
	for _, paranoid := range []bool{false, true} {
		name := "hash-only"
		if paranoid {
			name = "paranoid"
		}
		b.Run(name, func(b *testing.B) {
			w := core.S3World(false, names.SwitchReselect)
			opt := w.Options
			opt.Paranoid = paranoid
			for i := 0; i < b.N; i++ {
				if _, err := core.Screen(w, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_VoLTEvsCSFB contrasts the two 4G voice deployments
// of §2 on OP-II: CSFB strands the device after the call (S3); VoLTE
// never leaves 4G.
func BenchmarkAblation_VoLTEvsCSFB(b *testing.B) {
	run := func(volte bool) (stuck bool) {
		w := netemu.NewWorld(1)
		if volte {
			netemu.VoLTEStack(w, netemu.OPII(), netemu.FixSet{})
		} else {
			netemu.StandardStack(w, netemu.OPII(), netemu.FixSet{})
		}
		w.SetGlobal(names.GSys, 2) // types.Sys4G
		w.SetGlobal(names.GReg4G, 1)
		w.InjectAt(0, names.UERRC4G, types.Message{Kind: types.MsgUserDataOn})
		w.InjectAt(time.Second, names.UECM, types.Message{Kind: types.MsgUserDialCall})
		w.RunUntil(10 * time.Second)
		w.Inject(names.UECM, types.Message{Kind: types.MsgUserHangUp})
		w.Run()
		return w.Global(names.GWantReturn4G) == 1
	}
	for _, mode := range []struct {
		name  string
		volte bool
	}{{"CSFB", false}, {"VoLTE", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var stuck bool
			for i := 0; i < b.N; i++ {
				stuck = run(mode.volte)
			}
			v := 0.0
			if stuck {
				v = 1
			}
			b.ReportMetric(v, "stuck_after_call")
			if stuck == mode.volte {
				b.Fatalf("%s: stuck=%v", mode.name, stuck)
			}
		})
	}
}

// BenchmarkS5AffectedVolume regenerates §7's S5 volume accounting.
func BenchmarkS5AffectedVolume(b *testing.B) {
	var s experiments.S5Stats
	for i := 0; i < b.N; i++ {
		s = experiments.S5AffectedVolumes(113, 7)
	}
	b.ReportMetric(s.AvgAffectedKB, "avg_affected_KB")
	b.ReportMetric(float64(s.Over4MB), "calls_over_4MB")
	echo(b, "s5vol", s.String())
}

// BenchmarkInflationSweep runs the §7 exploit-inflation assessment.
func BenchmarkInflationSweep(b *testing.B) {
	rates := []float64{1, 10, 60}
	var without, with []experiments.InflationPoint
	for i := 0; i < b.N; i++ {
		without = experiments.InflationSweep(rates, 24*time.Hour, false, 1)
		with = experiments.InflationSweep(rates, 24*time.Hour, true, 1)
	}
	b.ReportMetric(without[len(without)-1].DegradedFraction*100, "degraded_pct_at_60cph")
	echo(b, "inflation", experiments.RenderInflation(without, with))
}

// BenchmarkTwoPhasePipeline runs the complete CNetVerifier workflow:
// phase-1 screening of every finding plus phase-2 replay of every
// counterexample on the emulator.
func BenchmarkTwoPhasePipeline(b *testing.B) {
	var reproduced, total int
	for i := 0; i < b.N; i++ {
		outcomes, err := validate.Campaign(validate.Config{})
		if err != nil {
			b.Fatal(err)
		}
		reproduced, total = 0, len(outcomes)
		for _, o := range outcomes {
			if o.Reproduced {
				reproduced++
			}
		}
	}
	b.ReportMetric(float64(reproduced), "reproduced")
	b.ReportMetric(float64(total), "counterexamples")
}
